(* The go/no-go audit trail. One structured record per policy decision,
   kept in a bounded ring (like the tracer: a mutex serializes helper
   compile domains and the main thread) with cumulative aggregates that
   survive ring eviction, an optional JSON-lines file sink, and query /
   rendering helpers.

   This module deliberately speaks its own vocabulary ([verdict],
   [pass_match]) rather than the engine's: [lib/obs] sits below
   [lib/core] and [lib/jit] in the dependency order, so the analyzer
   converts its types on the way in. *)

type verdict =
  | Allow
  | Disable of string list
  | Forbid

type pass_match = {
  pm_pass : string;
  pm_side : string;  (* "removed" or "added" *)
  pm_eq_chains : int;
  pm_max_eq_chains : int;
  pm_chains : (string * int) list;
      (* the common sub-chains behind pm_eq_chains: key → min multiplicity *)
}

type cve_match = {
  cm_cve : string;
  cm_passes : pass_match list;
}

type source =
  | Fresh
  | Cache_hit

type record = {
  seq : int;
  ts : float;
  func_name : string;
  func_index : int;
  bytecode_hash : int;
  feedback_hash : int;
  verdict : verdict;
  matches : cve_match list;
  thr : int;
  ratio : float;
  prefilter_candidates : int;
  prefilter_hits : int;
  db_generation : int;
  db_size : int;
  source : source;
  domain : int;
  duration : float;
  (* fleet provenance: set by jitbulld from the request's
     x-jitbull-client and traceparent headers; None for local decisions *)
  client_id : string option;
  remote_parent : int option;
}

type t = {
  capacity : int;
  ring : record option array;
  mutable head : int;
  mutable total : int;
  mutable chan : out_channel option;
  (* file-sink rotation: bytes written to the current file, the sink
     path (for the rename), and the size cap (None = never rotate) *)
  mutable sink_path : string option;
  mutable sink_bytes : int;
  mutable sink_max_bytes : int option;
  mutable sink_rotations : int;
  mu : Mutex.t;
  clock : unit -> float;
  start : float;
  (* cumulative aggregates, maintained at append so Prometheus series
     keep counting after the ring evicts old records *)
  mutable n_allow : int;
  mutable n_disable : int;
  mutable n_forbid : int;
  mutable n_cache_hits : int;
  cve_counts : (string, int) Hashtbl.t;
  func_verdicts : (string * string, int) Hashtbl.t;
}

let create ?(capacity = 1024) ?(clock : (unit -> float) option) () =
  let clock = match clock with Some c -> c | None -> Clock.now in
  let capacity = max 1 capacity in
  {
    capacity;
    ring = Array.make capacity None;
    head = 0;
    total = 0;
    chan = None;
    sink_path = None;
    sink_bytes = 0;
    sink_max_bytes = None;
    sink_rotations = 0;
    mu = Mutex.create ();
    clock;
    start = clock ();
    n_allow = 0;
    n_disable = 0;
    n_forbid = 0;
    n_cache_hits = 0;
    cve_counts = Hashtbl.create 16;
    func_verdicts = Hashtbl.create 64;
  }

let now t = t.clock () -. t.start

let verdict_label = function
  | Allow -> "allow"
  | Disable _ -> "disable"
  | Forbid -> "forbid"

let verdict_to_string = function
  | Allow -> "allow"
  | Disable ps -> "disable(" ^ String.concat "," ps ^ ")"
  | Forbid -> "forbid"

let source_to_string = function Fresh -> "fresh" | Cache_hit -> "cache_hit"

let source_of_string = function
  | "fresh" -> Fresh
  | "cache_hit" -> Cache_hit
  | s -> raise (Jsonx.Parse_error ("unknown audit source " ^ s))

(* ---- JSON ---- *)

let verdict_to_json = function
  | Allow -> Jsonx.Assoc [ ("kind", Jsonx.String "allow") ]
  | Disable ps ->
    Jsonx.Assoc
      [
        ("kind", Jsonx.String "disable");
        ("passes", Jsonx.List (List.map (fun p -> Jsonx.String p) ps));
      ]
  | Forbid -> Jsonx.Assoc [ ("kind", Jsonx.String "forbid") ]

let verdict_of_json j =
  match Jsonx.to_str (Jsonx.member "kind" j) with
  | "allow" -> Allow
  | "disable" ->
    Disable
      (List.map Jsonx.to_str (Jsonx.to_list_exn (Jsonx.member "passes" j)))
  | "forbid" -> Forbid
  | s -> raise (Jsonx.Parse_error ("unknown audit verdict " ^ s))

let pass_match_to_json pm =
  Jsonx.Assoc
    [
      ("pass", Jsonx.String pm.pm_pass);
      ("side", Jsonx.String pm.pm_side);
      ("eq_chains", Jsonx.Int pm.pm_eq_chains);
      ("max_eq_chains", Jsonx.Int pm.pm_max_eq_chains);
      ( "chains",
        Jsonx.Assoc (List.map (fun (k, c) -> (k, Jsonx.Int c)) pm.pm_chains) );
    ]

let pass_match_of_json j =
  {
    pm_pass = Jsonx.to_str (Jsonx.member "pass" j);
    pm_side = Jsonx.to_str (Jsonx.member "side" j);
    pm_eq_chains = Jsonx.to_int (Jsonx.member "eq_chains" j);
    pm_max_eq_chains = Jsonx.to_int (Jsonx.member "max_eq_chains" j);
    pm_chains =
      (* absent in records written before the explain layer existed *)
      (match Jsonx.member "chains" j with
      | Jsonx.Null -> []
      | Jsonx.Assoc kvs -> List.map (fun (k, v) -> (k, Jsonx.to_int v)) kvs
      | _ -> raise (Jsonx.Parse_error "pass_match chains must be an object"));
  }

let cve_match_to_json cm =
  Jsonx.Assoc
    [
      ("cve", Jsonx.String cm.cm_cve);
      ("passes", Jsonx.List (List.map pass_match_to_json cm.cm_passes));
    ]

let cve_match_of_json j =
  {
    cm_cve = Jsonx.to_str (Jsonx.member "cve" j);
    cm_passes =
      List.map pass_match_of_json (Jsonx.to_list_exn (Jsonx.member "passes" j));
  }

let record_fields r =
  ([
      ("seq", Jsonx.Int r.seq);
      ("ts", Jsonx.Float r.ts);
      ("func", Jsonx.String r.func_name);
      ("func_index", Jsonx.Int r.func_index);
      ("bytecode_hash", Jsonx.Int r.bytecode_hash);
      ("feedback_hash", Jsonx.Int r.feedback_hash);
      ("verdict", verdict_to_json r.verdict);
      ("matches", Jsonx.List (List.map cve_match_to_json r.matches));
      ("thr", Jsonx.Int r.thr);
      ("ratio", Jsonx.Float r.ratio);
      ("prefilter_candidates", Jsonx.Int r.prefilter_candidates);
      ("prefilter_hits", Jsonx.Int r.prefilter_hits);
      ("db_generation", Jsonx.Int r.db_generation);
      ("db_size", Jsonx.Int r.db_size);
      ("source", Jsonx.String (source_to_string r.source));
      ("domain", Jsonx.Int r.domain);
      ("duration", Jsonx.Float r.duration);
    ]
    @ (match r.client_id with
      | Some c -> [ ("client", Jsonx.String c) ]
      | None -> [])
    @ (match r.remote_parent with
      | Some p -> [ ("remote_parent", Jsonx.Int p) ]
      | None -> []))

let record_to_json r = Jsonx.Assoc (record_fields r)

let record_of_json j =
  {
    seq = Jsonx.to_int (Jsonx.member "seq" j);
    ts = Jsonx.to_float (Jsonx.member "ts" j);
    func_name = Jsonx.to_str (Jsonx.member "func" j);
    func_index = Jsonx.to_int (Jsonx.member "func_index" j);
    bytecode_hash = Jsonx.to_int (Jsonx.member "bytecode_hash" j);
    feedback_hash = Jsonx.to_int (Jsonx.member "feedback_hash" j);
    verdict = verdict_of_json (Jsonx.member "verdict" j);
    matches =
      List.map cve_match_of_json (Jsonx.to_list_exn (Jsonx.member "matches" j));
    thr = Jsonx.to_int (Jsonx.member "thr" j);
    ratio = Jsonx.to_float (Jsonx.member "ratio" j);
    prefilter_candidates = Jsonx.to_int (Jsonx.member "prefilter_candidates" j);
    prefilter_hits = Jsonx.to_int (Jsonx.member "prefilter_hits" j);
    db_generation = Jsonx.to_int (Jsonx.member "db_generation" j);
    db_size = Jsonx.to_int (Jsonx.member "db_size" j);
    source = source_of_string (Jsonx.to_str (Jsonx.member "source" j));
    domain = Jsonx.to_int (Jsonx.member "domain" j);
    duration = Jsonx.to_float (Jsonx.member "duration" j);
    (* absent in records written before the fleet plane existed *)
    client_id =
      (match Jsonx.member "client" j with
      | Jsonx.Null -> None
      | v -> Some (Jsonx.to_str v));
    remote_parent =
      (match Jsonx.member "remote_parent" j with
      | Jsonx.Null -> None
      | v -> Some (Jsonx.to_int v));
  }

(* ---- recording ---- *)

let set_file_sink t ?max_bytes path =
  Mutex.lock t.mu;
  (match t.chan with Some oc -> close_out oc | None -> ());
  t.chan <- Some (open_out path);
  t.sink_path <- Some path;
  t.sink_bytes <- 0;
  t.sink_max_bytes <- max_bytes;
  Mutex.unlock t.mu

let sink_rotations t = t.sink_rotations

(* Size-based rotation, checked after each sink write (so one oversized
   record still lands whole): the current file moves to [path ^ ".1"]
   (clobbering the previous generation — one level of history bounds a
   long-lived daemon's evidence log at ~2×max_bytes) and the sink
   reopens fresh. Called with [t.mu] held. *)
let maybe_rotate t =
  match (t.sink_max_bytes, t.sink_path) with
  | Some cap, Some path when t.sink_bytes >= cap ->
    (match t.chan with Some oc -> close_out oc | None -> ());
    (try Sys.rename path (path ^ ".1") with Sys_error _ -> ());
    t.chan <- Some (open_out path);
    t.sink_bytes <- 0;
    t.sink_rotations <- t.sink_rotations + 1
  | _ -> ()

let append t ?ts ?client_id ?remote_parent ~func_name ~func_index
    ~bytecode_hash ~feedback_hash ~verdict ~matches ~thr ~ratio
    ~prefilter_candidates ~prefilter_hits ~db_generation ~db_size ~source
    ~duration () =
  let ts = match ts with Some x -> x | None -> now t in
  let domain = (Domain.self () :> int) in
  Mutex.lock t.mu;
  let r =
    {
      seq = t.total;
      ts;
      func_name;
      func_index;
      bytecode_hash;
      feedback_hash;
      verdict;
      matches;
      thr;
      ratio;
      prefilter_candidates;
      prefilter_hits;
      db_generation;
      db_size;
      source;
      domain;
      duration;
      client_id;
      remote_parent;
    }
  in
  t.ring.(t.head) <- Some r;
  t.head <- (t.head + 1) mod t.capacity;
  t.total <- t.total + 1;
  (match verdict with
  | Allow -> t.n_allow <- t.n_allow + 1
  | Disable _ -> t.n_disable <- t.n_disable + 1
  | Forbid -> t.n_forbid <- t.n_forbid + 1);
  (match source with Cache_hit -> t.n_cache_hits <- t.n_cache_hits + 1 | Fresh -> ());
  List.iter
    (fun cm ->
      Hashtbl.replace t.cve_counts cm.cm_cve
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.cve_counts cm.cm_cve)))
    matches;
  let fv = (func_name, verdict_label verdict) in
  Hashtbl.replace t.func_verdicts fv
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.func_verdicts fv));
  (match t.chan with
  | Some oc ->
    let line = Jsonx.to_string (record_to_json r) in
    output_string oc line;
    output_char oc '\n';
    flush oc;
    t.sink_bytes <- t.sink_bytes + String.length line + 1;
    maybe_rotate t
  | None -> ());
  Mutex.unlock t.mu;
  r

(* ---- queries ---- *)

let records t =
  Mutex.lock t.mu;
  let n = min t.total t.capacity in
  let rs =
    List.init n (fun i ->
        let idx = (t.head - n + i + t.capacity) mod t.capacity in
        match t.ring.(idx) with Some r -> r | None -> assert false)
  in
  Mutex.unlock t.mu;
  rs

let total t = t.total

let last t n = List.rev (records t) |> List.filteri (fun i _ -> i < max 0 n)

(* Cumulative verdict totals (survive ring eviction) — what an engine
   pushes to the fleet aggregator, and what /fleet sums per client. *)
type totals = {
  tt_records : int;
  tt_allow : int;
  tt_disable : int;
  tt_forbid : int;
  tt_cache_hits : int;
}

let totals t =
  Mutex.lock t.mu;
  let v =
    {
      tt_records = t.total;
      tt_allow = t.n_allow;
      tt_disable = t.n_disable;
      tt_forbid = t.n_forbid;
      tt_cache_hits = t.n_cache_hits;
    }
  in
  Mutex.unlock t.mu;
  v

(* Records with [seq >= from], oldest first — the audit-delta a pusher
   sends between snapshots (bounded by ring capacity: older deltas are
   already gone, which the cumulative totals cover). *)
let since t from_seq = List.filter (fun r -> r.seq >= from_seq) (records t)

let by_function t name =
  List.filter (fun r -> String.equal r.func_name name) (records t)

let by_cve t cve =
  List.filter
    (fun r -> List.exists (fun cm -> String.equal cm.cm_cve cve) r.matches)
    (records t)

let close t =
  Mutex.lock t.mu;
  (match t.chan with
  | Some oc ->
    close_out oc;
    t.chan <- None
  | None -> ());
  Mutex.unlock t.mu

(* ---- rendering ---- *)

let table ?(limit = 20) t =
  let headers =
    [ "seq"; "ts"; "function"; "verdict"; "cves"; "eq"; "src"; "gen"; "dom" ]
  in
  let rows =
    last t limit |> List.rev
    |> List.map (fun r ->
           let cves = String.concat " " (List.map (fun cm -> cm.cm_cve) r.matches) in
           let eq =
             r.matches
             |> List.concat_map (fun cm -> cm.cm_passes)
             |> List.map (fun pm ->
                    Printf.sprintf "%s:%d/%d" pm.pm_pass pm.pm_eq_chains
                      pm.pm_max_eq_chains)
             |> String.concat " "
           in
           [
             string_of_int r.seq;
             Printf.sprintf "%.6f" r.ts;
             r.func_name;
             verdict_to_string r.verdict;
             (if cves = "" then "-" else cves);
             (if eq = "" then "-" else eq);
             source_to_string r.source;
             string_of_int r.db_generation;
             string_of_int r.domain;
           ])
  in
  (headers, rows)

let render_prometheus t =
  Mutex.lock t.mu;
  let total = t.total
  and allow = t.n_allow
  and disable = t.n_disable
  and forbid = t.n_forbid
  and cache_hits = t.n_cache_hits in
  let cves =
    Hashtbl.fold (fun cve n acc -> (cve, n) :: acc) t.cve_counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let funcs =
    Hashtbl.fold (fun fv n acc -> (fv, n) :: acc) t.func_verdicts []
    |> List.sort compare
  in
  Mutex.unlock t.mu;
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  line "# TYPE jitbull_audit_records_total counter\n";
  line "jitbull_audit_records_total %d\n" total;
  line "# TYPE jitbull_audit_verdicts_total counter\n";
  line "jitbull_audit_verdicts_total{verdict=\"allow\"} %d\n" allow;
  line "jitbull_audit_verdicts_total{verdict=\"disable\"} %d\n" disable;
  line "jitbull_audit_verdicts_total{verdict=\"forbid\"} %d\n" forbid;
  line "# TYPE jitbull_audit_cache_hits_total counter\n";
  line "jitbull_audit_cache_hits_total %d\n" cache_hits;
  line "# TYPE jitbull_audit_sink_rotations_total counter\n";
  line "jitbull_audit_sink_rotations_total %d\n" t.sink_rotations;
  if cves <> [] then begin
    line "# TYPE jitbull_audit_cve_matches_total counter\n";
    List.iter
      (fun (cve, n) ->
        line "jitbull_audit_cve_matches_total{cve=\"%s\"} %d\n"
          (Metrics.escape_label_value cve) n)
      cves
  end;
  if funcs <> [] then begin
    line "# TYPE jitbull_audit_function_verdicts_total counter\n";
    List.iter
      (fun ((func, verdict), n) ->
        line "jitbull_audit_function_verdicts_total{func=\"%s\",verdict=\"%s\"} %d\n"
          (Metrics.escape_label_value func) verdict n)
      funcs
  end;
  Buffer.contents buf
