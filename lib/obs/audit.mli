(** The go/no-go audit trail: one structured, append-only record per
    policy decision, answering — for any function the engine considered —
    {e which CVE entry matched, on which passes, with what EqChains
    scores against which Thr/Ratio, what the verdict was, whether it came
    from the policy cache, against which DB generation, and on which
    domain}.

    Records live in a bounded ring (oldest evicted) guarded by a mutex —
    helper compile domains append concurrently with the main thread — and
    can additionally be streamed to a JSON-lines file. Cumulative
    aggregates (verdict totals, per-CVE match counts, per-function
    verdict counts) are maintained at append time so the Prometheus
    series in {!render_prometheus} keep counting after eviction.

    Types here mirror, but do not reference, the engine's: [lib/obs]
    sits below [lib/core]/[lib/jit], so the analyzer converts its
    decision and the comparator's match details on the way in. *)

type verdict =
  | Allow
  | Disable of string list  (** the passes the engine was told to turn off *)
  | Forbid

(** One pass on which the comparator matched a DNA entry: the EqChains
    score and the ratio denominator [min (|δ|, |δ'|)] it was held
    against (paper §IV-E). [pm_side] is ["removed"] or ["added"] — which
    side of the Δ satisfied the Thr/Ratio test first. [pm_chains] is the
    evidence itself: the sub-chains common to both deltas on that side
    with their min multiplicities (they sum to [pm_eq_chains]), sorted by
    key — what {!Explain} prints as "matching sub-chains". Decoding
    tolerates records written before this field existed ([[]]). *)
type pass_match = {
  pm_pass : string;
  pm_side : string;
  pm_eq_chains : int;
  pm_max_eq_chains : int;
  pm_chains : (string * int) list;
}

type cve_match = {
  cm_cve : string;
  cm_passes : pass_match list;
}

type source =
  | Fresh  (** the comparator ran against the DB *)
  | Cache_hit  (** verdict replayed from the policy cache; [matches] is empty *)

type record = {
  seq : int;  (** 0-based append order, never reused *)
  ts : float;  (** seconds since trail creation *)
  func_name : string;
  func_index : int;
  bytecode_hash : int;
  feedback_hash : int;
  verdict : verdict;
  matches : cve_match list;
  thr : int;  (** comparator Thr in force for this decision *)
  ratio : float;  (** comparator Ratio in force for this decision *)
  prefilter_candidates : int;  (** DB entries before the Thr prefilter *)
  prefilter_hits : int;  (** entries surviving it (0/0 on cache hits) *)
  db_generation : int;
  db_size : int;
  source : source;
  domain : int;  (** [Domain.self] of the deciding domain *)
  duration : float;  (** seconds spent deciding (0 on cache hits) *)
  client_id : string option;
      (** requesting fleet client ([x-jitbull-client]); [None] locally *)
  remote_parent : int option;
      (** the client-side span that asked (traceparent); [None] locally *)
}

type t

(** [create ?capacity ?clock ()] — ring of at most [capacity] (default
    1024, min 1) records. [clock] as in {!Tracer.create}. *)
val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t

(** Seconds since creation, per the trail's clock. *)
val now : t -> float

(** Mirror every subsequent record to [path] as one JSON object per
    line (truncates). When [max_bytes] is given, the sink rotates once
    it exceeds that size: the file moves to [path ^ ".1"] (one level of
    history, clobbered on the next rotation) and reopens fresh — a
    long-lived daemon's evidence log stays bounded at ~2×[max_bytes]. *)
val set_file_sink : t -> ?max_bytes:int -> string -> unit

(** Rotations performed so far (also the
    [jitbull_audit_sink_rotations_total] series). *)
val sink_rotations : t -> int

(** Append one decision record; [ts] defaults to [now t], the domain id
    is captured from the calling domain. [client_id]/[remote_parent]
    carry fleet provenance when the decision was made on behalf of a
    remote engine. Returns the record as stored. *)
val append :
  t ->
  ?ts:float ->
  ?client_id:string ->
  ?remote_parent:int ->
  func_name:string ->
  func_index:int ->
  bytecode_hash:int ->
  feedback_hash:int ->
  verdict:verdict ->
  matches:cve_match list ->
  thr:int ->
  ratio:float ->
  prefilter_candidates:int ->
  prefilter_hits:int ->
  db_generation:int ->
  db_size:int ->
  source:source ->
  duration:float ->
  unit ->
  record

(** {2 Queries} *)

(** Records currently held, oldest first. *)
val records : t -> record list

(** Records ever appended (≥ [List.length (records t)]). *)
val total : t -> int

(** The [n] most recent records, newest first. *)
val last : t -> int -> record list

(** Cumulative verdict totals — maintained at append, so they survive
    ring eviction. What a fleet client pushes and /fleet sums. *)
type totals = {
  tt_records : int;
  tt_allow : int;
  tt_disable : int;
  tt_forbid : int;
  tt_cache_hits : int;
}

val totals : t -> totals

(** Retained records with [seq >= from], oldest first — the audit delta
    a fleet pusher sends between snapshots. *)
val since : t -> int -> record list

(** Retained records for one function, oldest first. *)
val by_function : t -> string -> record list

(** Retained records whose matches name [cve], oldest first. *)
val by_cve : t -> string -> record list

(** Flush and close the file sink, if any. *)
val close : t -> unit

(** {2 Rendering} *)

val verdict_label : verdict -> string
(** ["allow"] / ["disable"] / ["forbid"] (pass list elided). *)

val verdict_to_string : verdict -> string
val source_to_string : source -> string

val record_to_json : record -> Jsonx.t

(** Inverse of {!record_to_json}; raises [Jsonx.Parse_error] on
    malformed input. *)
val record_of_json : Jsonx.t -> record

(** [(headers, rows)] for the newest [limit] (default 20) records,
    oldest first — feed to {!Report.render_table}. *)
val table : ?limit:int -> t -> string list * string list list

(** Prometheus text for the cumulative aggregates:
    [jitbull_audit_records_total], [jitbull_audit_verdicts_total{verdict}],
    [jitbull_audit_cache_hits_total], [jitbull_audit_cve_matches_total{cve}]
    and [jitbull_audit_function_verdicts_total{func,verdict}], with label
    values escaped per {!Metrics.escape_label_value}. *)
val render_prometheus : t -> string
