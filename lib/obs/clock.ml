type source = unit -> float

let wall : source = Unix.gettimeofday

(* The installed source is read on every tick, so swapping it affects
   tracers and benchmarks that were created earlier — they hold [now],
   not the source it resolved to at creation time. *)
let installed : source Atomic.t = Atomic.make wall

let set_source s = Atomic.set installed s
let source () = Atomic.get installed
let now () = (Atomic.get installed) ()

let with_source s f =
  let prev = Atomic.get installed in
  Atomic.set installed s;
  Fun.protect ~finally:(fun () -> Atomic.set installed prev) f

let manual ?(start = 0.0) () =
  let t = Atomic.make start in
  let src () = Atomic.get t in
  let advance dt =
    (* CAS loop: [advance] may race with itself across domains in tests *)
    let rec go () =
      let cur = Atomic.get t in
      if not (Atomic.compare_and_set t cur (cur +. dt)) then go ()
    in
    go ()
  in
  (src, advance)
