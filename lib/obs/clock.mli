(** The one time source behind every duration the repo measures.

    The tracer's spans, [Obs.time] histograms, the engine's stall
    accounting and the benchmark harness all read {!now} instead of
    calling [Unix.gettimeofday] directly, so tests can install a manual
    source and get deterministic durations, and a monotonic source (e.g.
    a [clock_gettime(CLOCK_MONOTONIC)] binding, when one is available)
    can be swapped in process-wide with {!set_source}.

    The installed source is consulted on every {!now} call — components
    capture the {!now} function, not the source it currently resolves
    to — and is stored in an [Atomic.t], so swapping is safe while helper
    domains are timing spans. *)

type source = unit -> float
(** Absolute seconds. Only differences are ever interpreted. *)

(** [Unix.gettimeofday] — the default source. *)
val wall : source

(** Install / read the process-wide source. *)

val set_source : source -> unit
val source : unit -> source

(** [now ()] — current time per the installed source. *)
val now : unit -> float

(** [with_source s f] installs [s] for the dynamic extent of [f], then
    restores the previous source (also on exceptions). *)
val with_source : source -> (unit -> 'a) -> 'a

(** [manual ?start ()] — a test clock: returns the source and an
    [advance] function adding seconds to it. *)
val manual : ?start:float -> unit -> source * (float -> unit)
