(* Joins audit records with the IR-diff ring into causal go/no-go
   reports. Pure rendering over immutable inputs — every surface (CLI,
   offline tool, HTTP text and HTML) goes through here. *)

type t = {
  ex_record : Audit.record;
  ex_evidence : Audit.record option;
  ex_diff : Irdiff.compile_diff option;
}

let resolve ?irdiff ~history (r : Audit.record) =
  let evidence =
    match r.Audit.source with
    | Audit.Fresh -> None
    | Audit.Cache_hit ->
      (* newest earlier Fresh record for the same compile key: the policy
         cache is keyed on exactly these hashes, so this is the decision
         whose verdict was replayed *)
      List.fold_left
        (fun acc (c : Audit.record) ->
          if
            c.Audit.seq < r.Audit.seq
            && c.Audit.source = Audit.Fresh
            && String.equal c.Audit.func_name r.Audit.func_name
            && c.Audit.bytecode_hash = r.Audit.bytecode_hash
            && c.Audit.feedback_hash = r.Audit.feedback_hash
          then
            match acc with
            | Some (p : Audit.record) when p.Audit.seq > c.Audit.seq -> acc
            | _ -> Some c
          else acc)
        None history
  in
  let find_diff seq = Option.bind irdiff (fun ring -> Irdiff.find ring seq) in
  let diff =
    match find_diff r.Audit.seq with
    | Some d -> Some d
    | None ->
      (match evidence with
      | Some e -> find_diff e.Audit.seq
      | None -> None)
  in
  { ex_record = r; ex_evidence = evidence; ex_diff = diff }

(* ---- shared bits ---- *)

let matched_passes (r : Audit.record) =
  let seen = Hashtbl.create 8 in
  List.concat_map (fun cm -> cm.Audit.cm_passes) r.Audit.matches
  |> List.filter_map (fun pm ->
         if Hashtbl.mem seen pm.Audit.pm_pass then None
         else begin
           Hashtbl.add seen pm.Audit.pm_pass ();
           Some pm.Audit.pm_pass
         end)

(* The record whose comparator evidence we narrate: the decision itself,
   or — for a cache hit — the fresh decision it replayed. *)
let evidence_record t =
  match t.ex_evidence with Some e -> e | None -> t.ex_record

let verdict_rationale ?can_disable t =
  let r = t.ex_record in
  match r.Audit.verdict with
  | Audit.Allow ->
    "no DB entry reached Thr/Ratio on any pass; JIT compilation proceeds \
     unrestricted"
  | Audit.Disable ps ->
    Printf.sprintf
      "every matching pass is optional; Ion retries with %s disabled"
      (String.concat ", " ps)
  | Audit.Forbid ->
    let passes = matched_passes (evidence_record t) in
    let mandatory =
      match can_disable with
      | Some f -> List.filter (fun p -> not (f p)) passes
      | None -> []
    in
    (match mandatory with
    | [] ->
      "a matching pass cannot be disabled; Ion compilation is forbidden for \
       this function"
    | ms ->
      Printf.sprintf
        "%s %s cannot be disabled; Ion compilation is forbidden for this \
         function"
        (if List.length ms = 1 then "pass" else "passes")
        (String.concat ", " ms))

let chains_materialized (ids : (Jitbull_util.Intern.id * int) list) =
  List.map (fun (id, c) -> (Irdiff.chain_key id, c)) ids

let fmt_multiset kvs =
  String.concat ", " (List.map (fun (k, c) -> Printf.sprintf "%s x%d" k c) kvs)

(* ---- text ---- *)

let text_of_pass_match buf (pm : Audit.pass_match) ~thr ~ratio =
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  line "  pass %s (%s side): EqChains %d >= Thr %d, and %d >= %.2f x MaxEqChains %d\n"
    pm.Audit.pm_pass pm.Audit.pm_side pm.Audit.pm_eq_chains thr
    pm.Audit.pm_eq_chains ratio pm.Audit.pm_max_eq_chains;
  if pm.Audit.pm_chains <> [] then
    line "    matching sub-chains: %s\n" (fmt_multiset pm.Audit.pm_chains)

let text_of_diff buf (d : Irdiff.compile_diff) =
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  line "per-pass IR diff (%d of %d passes changed the IR; captured in %.1f us):\n"
    (List.length d.Irdiff.cd_passes)
    d.Irdiff.cd_total_passes
    (d.Irdiff.cd_capture_seconds *. 1e6);
  List.iter
    (fun (p : Irdiff.pass_diff) ->
      line "  %s: instrs %d -> %d, blocks %d -> %d\n" p.Irdiff.pd_pass
        p.Irdiff.pd_instrs_before p.Irdiff.pd_instrs_after
        p.Irdiff.pd_blocks_before p.Irdiff.pd_blocks_after;
      if p.Irdiff.pd_opcodes_added <> [] then
        line "    opcodes added: %s\n" (fmt_multiset p.Irdiff.pd_opcodes_added);
      if p.Irdiff.pd_opcodes_removed <> [] then
        line "    opcodes removed: %s\n" (fmt_multiset p.Irdiff.pd_opcodes_removed);
      if p.Irdiff.pd_chains_added <> [] then
        line "    sub-chains introduced: %s\n"
          (fmt_multiset (chains_materialized p.Irdiff.pd_chains_added));
      if p.Irdiff.pd_chains_removed <> [] then
        line "    sub-chains destroyed: %s\n"
          (fmt_multiset (chains_materialized p.Irdiff.pd_chains_removed)))
    d.Irdiff.cd_passes

let to_text ?can_disable t =
  let r = t.ex_record in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  line "decision #%d: %s -> %s\n" r.Audit.seq r.Audit.func_name
    (Audit.verdict_to_string r.Audit.verdict);
  line
    "function %s (index %d), domain %d, db generation %d (%d entries), decided \
     in %.1f us\n"
    r.Audit.func_name r.Audit.func_index r.Audit.domain r.Audit.db_generation
    r.Audit.db_size
    (r.Audit.duration *. 1e6);
  (match r.Audit.source with
  | Audit.Fresh ->
    line "comparator: Thr %d, Ratio %.2f; prefilter %d candidates -> %d hits\n"
      r.Audit.thr r.Audit.ratio r.Audit.prefilter_candidates
      r.Audit.prefilter_hits
  | Audit.Cache_hit ->
    (match t.ex_evidence with
    | Some e ->
      line
        "source: policy cache hit; replaying stored evidence of decision #%d \
         (same bytecode/feedback hashes, Thr %d, Ratio %.2f)\n"
        e.Audit.seq e.Audit.thr e.Audit.ratio
    | None ->
      line
        "source: policy cache hit; the fresh decision it replayed has been \
         evicted from the audit ring\n"));
  let ev = evidence_record t in
  if ev.Audit.matches = [] then line "no CVE entry matched\n"
  else
    List.iter
      (fun (cm : Audit.cve_match) ->
        line "%s matched on %d pass(es):\n" cm.Audit.cm_cve
          (List.length cm.Audit.cm_passes);
        List.iter
          (fun pm -> text_of_pass_match buf pm ~thr:ev.Audit.thr ~ratio:ev.Audit.ratio)
          cm.Audit.cm_passes)
      ev.Audit.matches;
  line "verdict: %s — %s\n"
    (Audit.verdict_label r.Audit.verdict)
    (verdict_rationale ?can_disable t);
  (match t.ex_diff with
  | Some d -> text_of_diff buf d
  | None -> line "per-pass IR diff: not captured (explain capture off or evicted)\n");
  Buffer.contents buf

(* ---- HTML ---- *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let page_css =
  "body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}\
   table{border-collapse:collapse;margin:0.5em 0}\
   th,td{border:1px solid #ccc;padding:0.25em 0.6em;text-align:left;\
   font-size:0.9em}\
   th{background:#f0f0f0}\
   code{background:#f6f6f6;padding:0 0.2em}\
   .allow{color:#0a7a0a}.disable{color:#b06000}.forbid{color:#c00000}\
   .muted{color:#777}"

let page title body =
  Printf.sprintf
    "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>%s</title>\
     <style>%s</style></head><body><h1>%s</h1>%s</body></html>"
    (html_escape title) page_css (html_escape title) body

let table headers rows =
  let cell tag s = Printf.sprintf "<%s>%s</%s>" tag (html_escape s) tag in
  let row tag cells = "<tr>" ^ String.concat "" (List.map (cell tag) cells) ^ "</tr>" in
  "<table>" ^ row "th" headers ^ String.concat "" (List.map (row "td") rows)
  ^ "</table>"

let to_html ?can_disable t =
  let r = t.ex_record in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let vl = Audit.verdict_label r.Audit.verdict in
  line "<p>function <code>%s</code> (index %d) &mdash; verdict <b class=\"%s\">%s</b></p>"
    (html_escape r.Audit.func_name)
    r.Audit.func_index vl
    (html_escape (Audit.verdict_to_string r.Audit.verdict));
  line
    "<p class=\"muted\">source %s, domain %d, db generation %d (%d entries), \
     decided in %.1f &micro;s</p>"
    (Audit.source_to_string r.Audit.source)
    r.Audit.domain r.Audit.db_generation r.Audit.db_size
    (r.Audit.duration *. 1e6);
  (match r.Audit.source, t.ex_evidence with
  | Audit.Cache_hit, Some e ->
    line
      "<p>policy cache hit: replaying stored evidence of decision \
       <a href=\"/explain?id=%d\">#%d</a> (same bytecode/feedback hashes)</p>"
      e.Audit.seq e.Audit.seq
  | Audit.Cache_hit, None ->
    line
      "<p>policy cache hit: the fresh decision it replayed has been evicted \
       from the audit ring</p>"
  | Audit.Fresh, _ ->
    line
      "<p>comparator: Thr %d, Ratio %.2f; prefilter %d candidates &rarr; %d \
       hits</p>"
      r.Audit.thr r.Audit.ratio r.Audit.prefilter_candidates
      r.Audit.prefilter_hits);
  let ev = evidence_record t in
  if ev.Audit.matches = [] then line "<p>no CVE entry matched</p>"
  else
    List.iter
      (fun (cm : Audit.cve_match) ->
        line "<h2>%s</h2>" (html_escape cm.Audit.cm_cve);
        Buffer.add_string buf
          (table
             [ "pass"; "side"; "EqChains"; "Thr"; "MaxEqChains"; "matching sub-chains" ]
             (List.map
                (fun (pm : Audit.pass_match) ->
                  [
                    pm.Audit.pm_pass;
                    pm.Audit.pm_side;
                    string_of_int pm.Audit.pm_eq_chains;
                    string_of_int ev.Audit.thr;
                    string_of_int pm.Audit.pm_max_eq_chains;
                    fmt_multiset pm.Audit.pm_chains;
                  ])
                cm.Audit.cm_passes)))
      ev.Audit.matches;
  line "<p><b>verdict: %s</b> &mdash; %s</p>" (html_escape vl)
    (html_escape (verdict_rationale ?can_disable t));
  (match t.ex_diff with
  | Some d ->
    line "<h2>per-pass IR diff</h2><p class=\"muted\">%d of %d passes changed \
          the IR; captured in %.1f &micro;s</p>"
      (List.length d.Irdiff.cd_passes)
      d.Irdiff.cd_total_passes
      (d.Irdiff.cd_capture_seconds *. 1e6);
    Buffer.add_string buf
      (table
         [ "pass"; "instrs"; "blocks"; "opcodes +"; "opcodes -";
           "sub-chains introduced"; "sub-chains destroyed" ]
         (List.map
            (fun (p : Irdiff.pass_diff) ->
              [
                p.Irdiff.pd_pass;
                Printf.sprintf "%d → %d" p.Irdiff.pd_instrs_before
                  p.Irdiff.pd_instrs_after;
                Printf.sprintf "%d → %d" p.Irdiff.pd_blocks_before
                  p.Irdiff.pd_blocks_after;
                fmt_multiset p.Irdiff.pd_opcodes_added;
                fmt_multiset p.Irdiff.pd_opcodes_removed;
                fmt_multiset (chains_materialized p.Irdiff.pd_chains_added);
                fmt_multiset (chains_materialized p.Irdiff.pd_chains_removed);
              ])
            d.Irdiff.cd_passes))
  | None ->
    line "<p class=\"muted\">per-pass IR diff: not captured (explain capture \
          off or evicted)</p>");
  page (Printf.sprintf "decision #%d: %s" r.Audit.seq r.Audit.func_name)
    (Buffer.contents buf)

let index_html ?(limit = 32) ~have_diff records =
  let recent =
    List.rev records |> List.filteri (fun i _ -> i < max 0 limit)
  in
  let rows =
    List.map
      (fun (r : Audit.record) ->
        Printf.sprintf
          "<tr><td><a href=\"/explain?id=%d\">#%d</a></td><td><code>%s</code>\
           </td><td class=\"%s\">%s</td><td>%s</td><td>%s</td><td>%s</td></tr>"
          r.Audit.seq r.Audit.seq
          (html_escape r.Audit.func_name)
          (Audit.verdict_label r.Audit.verdict)
          (html_escape (Audit.verdict_to_string r.Audit.verdict))
          (html_escape
             (String.concat " "
                (List.map (fun cm -> cm.Audit.cm_cve) r.Audit.matches)))
          (Audit.source_to_string r.Audit.source)
          (if have_diff r.Audit.seq then "yes" else "no"))
      recent
  in
  page "go/no-go decisions"
    ("<p>newest first; <code>diff</code> says whether the IR-diff ring still \
      holds the compile</p><table><tr><th>id</th><th>function</th>\
      <th>verdict</th><th>cves</th><th>source</th><th>diff</th></tr>"
    ^ String.concat "" rows ^ "</table>")
