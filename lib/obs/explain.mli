(** The decision-explanation engine: joins one audit record with the
    IR-diff ring into a causal report an operator can read — which CVE
    matched, on which passes, on the strength of which sub-chains, why
    the verdict followed, and which per-pass IR transformations
    introduced the evidence.

    Cache-hit records carry no comparator evidence of their own
    ([matches] is empty); {!resolve} replays the stored query evidence by
    finding the newest earlier [Fresh] record for the same compile key
    (function name + bytecode hash + feedback hash) in [history].

    Rendering is pure over the resolved value, so the HTTP exporter, the
    [jsrun --explain] exit report and [jitbull_db explain] all share it.
    [can_disable] (the binaries pass [Pipeline.can_disable]) lets forbid
    verdicts name the mandatory pass; without it the phrasing stays
    generic — [lib/obs] cannot see the pass pipeline. *)

type t = {
  ex_record : Audit.record;  (** the decision being explained *)
  ex_evidence : Audit.record option;
      (** for cache hits: the fresh record whose evidence is replayed
          ([None] when it was evicted — or for fresh records) *)
  ex_diff : Irdiff.compile_diff option;
      (** per-pass IR diff of the decision (or of the replayed fresh
          decision), if still in the ring *)
}

(** [resolve ?irdiff ~history r] — look up [r]'s diff and, for cache
    hits, the fresh record it replays. [history] is typically
    [Audit.records au] (oldest first; order does not matter). *)
val resolve : ?irdiff:Irdiff.t -> history:Audit.record list -> Audit.record -> t

(** Plain-text report (multi-line, trailing newline). *)
val to_text : ?can_disable:(string -> bool) -> t -> string

(** Self-contained HTML report: inline CSS only, one table per matched
    CVE plus a per-pass diff table. *)
val to_html : ?can_disable:(string -> bool) -> t -> string

(** HTML index of recent decisions, newest first, capped at [limit]
    (default 32), each linking to [/explain?id=<seq>]. [have_diff seq]
    says whether the diff ring still holds that decision. *)
val index_html : ?limit:int -> have_diff:(int -> bool) -> Audit.record list -> string
