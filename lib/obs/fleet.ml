(* Fleet telemetry aggregation — the server half of `POST /push`.

   Engine clients push *cumulative* snapshots (audit verdict totals, a
   locally-computed install-latency p99, their full metrics view) plus a
   bounded audit-record delta, framed as JSONL like /verdict batches:
   the first line is the snapshot object, each further line one audit
   record. The aggregator stores the latest snapshot per client, so
   fleet rollups are exactly the sum of the clients' local counters —
   re-pushing is idempotent, and a client restart (totals reset to zero)
   self-corrects on its next push. *)

type snapshot = {
  sn_client : string;
  sn_ts : float;  (* client-side tracer seconds at push time *)
  sn_totals : Audit.totals;
  sn_install_p99 : float;
  sn_metrics : Jsonx.t;  (* the client's Metrics.view_to_json *)
}

let snapshot_to_json s =
  Jsonx.Assoc
    [
      ("client", Jsonx.String s.sn_client);
      ("ts", Jsonx.Float s.sn_ts);
      ( "totals",
        Jsonx.Assoc
          [
            ("records", Jsonx.Int s.sn_totals.Audit.tt_records);
            ("allow", Jsonx.Int s.sn_totals.Audit.tt_allow);
            ("disable", Jsonx.Int s.sn_totals.Audit.tt_disable);
            ("forbid", Jsonx.Int s.sn_totals.Audit.tt_forbid);
            ("cache_hits", Jsonx.Int s.sn_totals.Audit.tt_cache_hits);
          ] );
      ("install_p99", Jsonx.Float s.sn_install_p99);
      ("metrics", s.sn_metrics);
    ]

let snapshot_of_json j =
  let t = Jsonx.member "totals" j in
  {
    sn_client = Jsonx.to_str (Jsonx.member "client" j);
    sn_ts = Jsonx.to_float (Jsonx.member "ts" j);
    sn_totals =
      {
        Audit.tt_records = Jsonx.to_int (Jsonx.member "records" t);
        tt_allow = Jsonx.to_int (Jsonx.member "allow" t);
        tt_disable = Jsonx.to_int (Jsonx.member "disable" t);
        tt_forbid = Jsonx.to_int (Jsonx.member "forbid" t);
        tt_cache_hits = Jsonx.to_int (Jsonx.member "cache_hits" t);
      };
    sn_install_p99 = Jsonx.to_float (Jsonx.member "install_p99" j);
    sn_metrics = Jsonx.member "metrics" j;
  }

(* ---- JSONL push framing (snapshot line, then audit-delta lines) ---- *)

let encode_push s deltas =
  String.concat "\n"
    (Jsonx.to_string (snapshot_to_json s)
    :: List.map (fun r -> Jsonx.to_string (Audit.record_to_json r)) deltas)

let decode_push body =
  match
    String.split_on_char '\n' body
    |> List.filter (fun l -> String.trim l <> "")
  with
  | [] -> Error "empty push body"
  | first :: rest ->
    (try
       let s = snapshot_of_json (Jsonx.parse first) in
       if not (String.length s.sn_client > 0 && String.length s.sn_client <= 128)
       then Error "client id must be 1..128 bytes"
       else
         let deltas =
           List.map (fun l -> Audit.record_of_json (Jsonx.parse l)) rest
         in
         Ok (s, deltas)
     with Jsonx.Parse_error msg -> Error msg)

(* ---- the aggregator ---- *)

type client = {
  mutable c_snapshot : snapshot;
  mutable c_pushes : int;
  mutable c_delta_records : int;  (* audit-delta records ever received *)
  mutable c_last_push : float;  (* server wall clock *)
}

type t = {
  mu : Mutex.t;
  clients : (string, client) Hashtbl.t;
}

let create () = { mu = Mutex.create (); clients = Hashtbl.create 16 }

let apply t s ~deltas =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.clients s.sn_client with
  | Some c ->
    c.c_snapshot <- s;
    c.c_pushes <- c.c_pushes + 1;
    c.c_delta_records <- c.c_delta_records + List.length deltas;
    c.c_last_push <- Unix.gettimeofday ()
  | None ->
    Hashtbl.replace t.clients s.sn_client
      {
        c_snapshot = s;
        c_pushes = 1;
        c_delta_records = List.length deltas;
        c_last_push = Unix.gettimeofday ();
      });
  Mutex.unlock t.mu

let sorted_clients t =
  Mutex.lock t.mu;
  let cs = Hashtbl.fold (fun id c acc -> (id, c) :: acc) t.clients [] in
  Mutex.unlock t.mu;
  List.sort (fun (a, _) (b, _) -> String.compare a b) cs

let clients t = List.map fst (sorted_clients t)

let rollup t =
  List.fold_left
    (fun acc (_, c) ->
      let tt = c.c_snapshot.sn_totals in
      {
        Audit.tt_records = acc.Audit.tt_records + tt.Audit.tt_records;
        tt_allow = acc.Audit.tt_allow + tt.Audit.tt_allow;
        tt_disable = acc.Audit.tt_disable + tt.Audit.tt_disable;
        tt_forbid = acc.Audit.tt_forbid + tt.Audit.tt_forbid;
        tt_cache_hits = acc.Audit.tt_cache_hits + tt.Audit.tt_cache_hits;
      })
    {
      Audit.tt_records = 0;
      tt_allow = 0;
      tt_disable = 0;
      tt_forbid = 0;
      tt_cache_hits = 0;
    }
    (sorted_clients t)

let rate num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* ---- rendering ---- *)

let render_prometheus t =
  let cs = sorted_clients t in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let esc = Metrics.escape_label_value in
  line "# TYPE jitbull_fleet_clients gauge\n";
  line "jitbull_fleet_clients %d\n" (List.length cs);
  if cs <> [] then begin
    line "# TYPE jitbull_fleet_pushes_total counter\n";
    List.iter
      (fun (id, c) ->
        line "jitbull_fleet_pushes_total{client=\"%s\"} %d\n" (esc id) c.c_pushes)
      cs;
    line "# TYPE jitbull_fleet_verdicts_total counter\n";
    List.iter
      (fun (id, c) ->
        let tt = c.c_snapshot.sn_totals in
        line "jitbull_fleet_verdicts_total{client=\"%s\",verdict=\"allow\"} %d\n"
          (esc id) tt.Audit.tt_allow;
        line "jitbull_fleet_verdicts_total{client=\"%s\",verdict=\"disable\"} %d\n"
          (esc id) tt.Audit.tt_disable;
        line "jitbull_fleet_verdicts_total{client=\"%s\",verdict=\"forbid\"} %d\n"
          (esc id) tt.Audit.tt_forbid)
      cs;
    line "# TYPE jitbull_fleet_forbid_rate gauge\n";
    List.iter
      (fun (id, c) ->
        let tt = c.c_snapshot.sn_totals in
        line "jitbull_fleet_forbid_rate{client=\"%s\"} %.6f\n" (esc id)
          (rate tt.Audit.tt_forbid tt.Audit.tt_records))
      cs;
    line "# TYPE jitbull_fleet_cache_hit_rate gauge\n";
    List.iter
      (fun (id, c) ->
        let tt = c.c_snapshot.sn_totals in
        line "jitbull_fleet_cache_hit_rate{client=\"%s\"} %.6f\n" (esc id)
          (rate tt.Audit.tt_cache_hits tt.Audit.tt_records))
      cs;
    line "# TYPE jitbull_fleet_install_latency_p99_seconds gauge\n";
    List.iter
      (fun (id, c) ->
        line "jitbull_fleet_install_latency_p99_seconds{client=\"%s\"} %.6f\n"
          (esc id) c.c_snapshot.sn_install_p99)
      cs
  end;
  let r = rollup t in
  line "# TYPE jitbull_fleet_rollup_verdicts_total counter\n";
  line "jitbull_fleet_rollup_verdicts_total{verdict=\"allow\"} %d\n"
    r.Audit.tt_allow;
  line "jitbull_fleet_rollup_verdicts_total{verdict=\"disable\"} %d\n"
    r.Audit.tt_disable;
  line "jitbull_fleet_rollup_verdicts_total{verdict=\"forbid\"} %d\n"
    r.Audit.tt_forbid;
  line "# TYPE jitbull_fleet_rollup_records_total counter\n";
  line "jitbull_fleet_rollup_records_total %d\n" r.Audit.tt_records;
  line "# TYPE jitbull_fleet_rollup_cache_hits_total counter\n";
  line "jitbull_fleet_rollup_cache_hits_total %d\n" r.Audit.tt_cache_hits;
  Buffer.contents buf

let totals_json tt =
  Jsonx.Assoc
    [
      ("records", Jsonx.Int tt.Audit.tt_records);
      ("allow", Jsonx.Int tt.Audit.tt_allow);
      ("disable", Jsonx.Int tt.Audit.tt_disable);
      ("forbid", Jsonx.Int tt.Audit.tt_forbid);
      ("cache_hits", Jsonx.Int tt.Audit.tt_cache_hits);
    ]

let to_json t =
  let cs = sorted_clients t in
  Jsonx.Assoc
    [
      ( "clients",
        Jsonx.Assoc
          (List.map
             (fun (id, c) ->
               ( id,
                 Jsonx.Assoc
                   [
                     ("pushes", Jsonx.Int c.c_pushes);
                     ("delta_records", Jsonx.Int c.c_delta_records);
                     ("totals", totals_json c.c_snapshot.sn_totals);
                     ("install_p99", Jsonx.Float c.c_snapshot.sn_install_p99);
                     ("metrics", c.c_snapshot.sn_metrics);
                   ] ))
             cs) );
      ("rollup", totals_json (rollup t));
    ]

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_html t =
  let cs = sorted_clients t in
  let r = rollup t in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  line
    "<!doctype html><html><head><meta charset=\"utf-8\">\
     <title>jitbull fleet</title><style>body{font-family:monospace;\
     margin:2em}table{border-collapse:collapse}td,th{border:1px solid \
     #999;padding:4px 10px;text-align:right}th{background:#eee}td:first-child,\
     th:first-child{text-align:left}</style></head><body>\n";
  line "<h1>jitbull fleet</h1>\n";
  line "<p>%d client(s) &mdash; rollup: %d decisions, %d allow / %d disable / \
        %d forbid, %d cache hits</p>\n"
    (List.length cs) r.Audit.tt_records r.Audit.tt_allow r.Audit.tt_disable
    r.Audit.tt_forbid r.Audit.tt_cache_hits;
  line
    "<table><tr><th>client</th><th>pushes</th><th>decisions</th>\
     <th>allow</th><th>disable</th><th>forbid</th><th>forbid rate</th>\
     <th>cache hit rate</th><th>install p99 (s)</th></tr>\n";
  List.iter
    (fun (id, c) ->
      let tt = c.c_snapshot.sn_totals in
      line
        "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td>\
         <td>%d</td><td>%.4f</td><td>%.4f</td><td>%.6f</td></tr>\n"
        (html_escape id) c.c_pushes tt.Audit.tt_records tt.Audit.tt_allow
        tt.Audit.tt_disable tt.Audit.tt_forbid
        (rate tt.Audit.tt_forbid tt.Audit.tt_records)
        (rate tt.Audit.tt_cache_hits tt.Audit.tt_records)
        c.c_snapshot.sn_install_p99)
    cs;
  line "</table>\n<p><a href=\"/metrics\">/metrics</a> &middot; \
        <a href=\"/explain\">/explain</a> &middot; \
        <a href=\"/fleet\">/fleet</a> (Prometheus)</p></body></html>\n";
  Buffer.contents buf
