(** Fleet telemetry aggregation — the state behind jitbulld's
    [POST /push] and [GET /fleet].

    Engine clients push {e cumulative} snapshots (audit verdict totals,
    a locally-computed install-latency p99, their metrics view) plus a
    bounded audit-record delta, framed as JSONL like [/verdict] batches:
    snapshot object first, one audit record per further line. The
    aggregator keeps the latest snapshot per client, so fleet rollups
    are exactly the sum of the clients' local counters, re-pushing is
    idempotent, and a client restart self-corrects on its next push. *)

type snapshot = {
  sn_client : string;  (** 1..128 bytes; labels the client's series *)
  sn_ts : float;  (** client-side tracer seconds at push time *)
  sn_totals : Audit.totals;
  sn_install_p99 : float;
  sn_metrics : Jsonx.t;  (** the client's {!Metrics.view_to_json} *)
}

val snapshot_to_json : snapshot -> Jsonx.t
val snapshot_of_json : Jsonx.t -> snapshot

(** [encode_push snapshot deltas] — the JSONL push body. *)
val encode_push : snapshot -> Audit.record list -> string

(** Strict inverse of {!encode_push}: malformed JSON, a missing
    snapshot line, or an empty/oversized client id is [Error] (serve it
    as 400). *)
val decode_push : string -> (snapshot * Audit.record list, string) result

type t

val create : unit -> t

(** Store [s] as its client's latest snapshot (replacing, not
    accumulating — snapshots are cumulative). *)
val apply : t -> snapshot -> deltas:Audit.record list -> unit

(** Known client ids, sorted. *)
val clients : t -> string list

(** Sum of every client's latest totals. *)
val rollup : t -> Audit.totals

(** Per-client [jitbull_fleet_*] series (verdict mix, forbid rate,
    cache-hit rate, install p99, push counts) plus the rollup sums. *)
val render_prometheus : t -> string

(** The same data as JSON (e2e tests, tooling). *)
val to_json : t -> Jsonx.t

(** The operator dashboard served at [/fleet?format=html]. *)
val render_html : t -> string
