(* A dependency-free HTTP exporter for live scraping: one listening
   socket on 127.0.0.1, one accept loop on its own domain, one request
   per connection (HTTP/1.0-style [Connection: close]). Good enough for
   a Prometheus scraper and a curl during an incident; deliberately not
   a web server.

   The handler only reads immutable snapshots ([Metrics.snapshot], the
   audit ring under its own mutex), so serving never blocks the engine
   beyond those locks. *)

type health_thresholds = {
  max_queue_depth : int;
  max_stall_seconds : float;
  max_stale_results : int;
  max_install_p99_seconds : float;
}

let default_thresholds =
  {
    max_queue_depth = 64;
    max_stall_seconds = 1.0;
    max_stale_results = 1000;
    max_install_p99_seconds = 0.5;
  }

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  dom : unit Domain.t;
}

let http_response status body content_type =
  let reason = match status with
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status reason content_type (String.length body) body

(* ---- route handlers ---- *)

let metrics_body obs =
  Metrics.render_prometheus (Obs.view (Some obs))
  ^ Audit.render_prometheus (Obs.audit obs)
  ^ (match Obs.irdiff obs with
    | Some ring -> Irdiff.render_prometheus ring
    | None -> "")

type check = {
  ck_name : string;
  ck_value : float;
  ck_threshold : float;
  ck_ok : bool;
}

let health_checks thresholds obs =
  let view = Obs.view (Some obs) in
  let gauge name =
    List.assoc_opt name view.Metrics.v_gauges |> Option.value ~default:0.0
  in
  let counter name =
    Metrics.find_counter view name |> Option.value ~default:0
  in
  let check name value threshold =
    { ck_name = name; ck_value = value; ck_threshold = threshold; ck_ok = value <= threshold }
  in
  (* quantile over the live histogram, not a mean derived from the
     snapshot: one slow install must not hide behind many fast ones.
     [Metrics.histogram] is get-or-create — pass the engine's bounds so
     an exporter-first probe registers the grid the engine expects *)
  let install_p99 =
    Metrics.quantile
      (Metrics.histogram ~bounds:Metrics.queue_latency_bounds
         (Obs.metrics obs) "compile.install_latency_seconds")
      0.99
  in
  [
    check "queue_depth"
      (gauge "compile.queue_depth")
      (float_of_int thresholds.max_queue_depth);
    check "main_stall_seconds"
      (gauge "engine.main_stall_seconds")
      thresholds.max_stall_seconds;
    check "stale_results"
      (float_of_int (counter "engine.stale_results"))
      (float_of_int thresholds.max_stale_results);
    check "install_latency_p99_seconds" install_p99
      thresholds.max_install_p99_seconds;
  ]

let health_body thresholds obs =
  let checks = health_checks thresholds obs in
  let ok = List.for_all (fun c -> c.ck_ok) checks in
  let json =
    Jsonx.Assoc
      [
        ("status", Jsonx.String (if ok then "ok" else "fail"));
        ( "checks",
          Jsonx.List
            (List.map
               (fun c ->
                 Jsonx.Assoc
                   [
                     ("name", Jsonx.String c.ck_name);
                     ("value", Jsonx.Float c.ck_value);
                     ("threshold", Jsonx.Float c.ck_threshold);
                     ("ok", Jsonx.Bool c.ck_ok);
                   ])
               checks) );
      ]
  in
  ((if ok then 200 else 503), Jsonx.to_string json)

let bad_request msg =
  http_response 400
    (Jsonx.to_string (Jsonx.Assoc [ ("error", Jsonx.String msg) ]))
    "application/json"

(* Query-parameter counts are strict: a negative, non-numeric or huge
   value is a client error (400), never silently defaulted. *)
let parse_count ?(max_value = 10_000) name query ~default =
  match List.assoc_opt name query with
  | None -> Ok default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | None -> Error (Printf.sprintf "%s: not an integer" name)
    | Some n when n < 0 -> Error (Printf.sprintf "%s: must be non-negative" name)
    | Some n when n > max_value ->
      Error (Printf.sprintf "%s: too large (max %d)" name max_value)
    | Some n -> Ok n)

let audit_response obs query =
  match parse_count "n" query ~default:32 with
  | Error msg -> bad_request msg
  | Ok n ->
    let records = Audit.last (Obs.audit obs) n in
    http_response 200
      (Jsonx.to_string (Jsonx.List (List.map Audit.record_to_json records)))
      "application/json"

let explain_response ~can_disable obs query =
  let au = Obs.audit obs in
  match List.assoc_opt "id" query with
  | None ->
    (* recent-decisions index *)
    (match parse_count "n" query ~default:32 with
    | Error msg -> bad_request msg
    | Ok n ->
      let have_diff seq =
        match Obs.irdiff obs with
        | Some ring -> Irdiff.find ring seq <> None
        | None -> false
      in
      http_response 200
        (Explain.index_html ~limit:n ~have_diff (Audit.records au))
        "text/html; charset=utf-8")
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | None -> bad_request "id: not an integer"
    | Some id ->
      let records = Audit.records au in
      (match List.find_opt (fun (r : Audit.record) -> r.Audit.seq = id) records with
      | None ->
        http_response 404
          (Jsonx.to_string
             (Jsonx.Assoc
                [
                  ( "error",
                    Jsonx.String
                      "no such decision: never made, or evicted from the audit \
                       ring" );
                ]))
          "application/json"
      | Some r ->
        let e = Explain.resolve ?irdiff:(Obs.irdiff obs) ~history:records r in
        (match List.assoc_opt "format" query with
        | Some "text" ->
          http_response 200 (Explain.to_text ?can_disable e)
            "text/plain; charset=utf-8"
        | _ ->
          http_response 200 (Explain.to_html ?can_disable e)
            "text/html; charset=utf-8")))

(* ---- request plumbing ---- *)

let parse_query qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | Some i ->
           Some
             ( String.sub kv 0 i,
               String.sub kv (i + 1) (String.length kv - i - 1) )
         | None -> if kv = "" then None else Some (kv, ""))

let parse_request_target line =
  (* "GET /audit?n=5 HTTP/1.1" → ("/audit", [("n","5")]) *)
  match String.split_on_char ' ' line with
  | _meth :: target :: _ ->
    (match String.index_opt target '?' with
    | Some i ->
      ( String.sub target 0 i,
        parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
    | None -> (target, []))
  | _ -> ("/", [])

let handle ~can_disable thresholds obs line =
  let path, query = parse_request_target line in
  match path with
  | "/metrics" -> http_response 200 (metrics_body obs) "text/plain; version=0.0.4"
  | "/healthz" ->
    let status, body = health_body thresholds obs in
    http_response status body "application/json"
  | "/audit" -> audit_response obs query
  | "/explain" -> explain_response ~can_disable obs query
  | _ -> http_response 404 "not found\n" "text/plain"

let read_request fd =
  (* Read until the blank line ending the header block; the request line
     is all we route on. Bounded so a misbehaving client cannot grow the
     buffer forever. *)
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec loop () =
    if Buffer.length buf > 16384 then ()
    else
      let headers_done =
        let s = Buffer.contents buf in
        let has sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        has "\r\n\r\n" || has "\n\n"
      in
      if headers_done then ()
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  match String.split_on_char '\n' (Buffer.contents buf) with
  | line :: _ -> String.trim line
  | [] -> ""

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let serve_loop listen_fd stop_flag ~can_disable thresholds obs =
  while not (Atomic.get stop_flag) do
    match Unix.accept listen_fd with
    | client, _ ->
      (try
         let line = read_request client in
         if line <> "" then write_all client (handle ~can_disable thresholds obs line)
       with _ -> ());
      (try Unix.close client with _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception _ ->
      (* listening socket closed by [stop] (or a transient accept error
         racing it): re-check the flag *)
      if not (Atomic.get stop_flag) then Unix.sleepf 0.01
  done

let start ?(thresholds = default_thresholds) ?can_disable ~obs ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_flag = Atomic.make false in
  let dom = Domain.spawn (fun () -> serve_loop fd stop_flag ~can_disable thresholds obs) in
  { listen_fd = fd; port; stop_flag; dom }

let port t = t.port

let stop t =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    (* closing the listening socket unblocks the accept *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.listen_fd with _ -> ());
    Domain.join t.dom
  end

(* ---- loopback client (tests, bench, CI smoke) ---- *)

let fetch_full ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all fd
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
           path);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _http :: code :: _ -> ( try int_of_string code with _ -> 0)
        | _ -> 0
      in
      let header_end =
        let n = String.length raw in
        let rec find i =
          if i + 4 > n then n
          else if String.sub raw i 4 = "\r\n\r\n" then i
          else find (i + 1)
        in
        find 0
      in
      let headers =
        String.sub raw 0 (min header_end (String.length raw))
        |> String.split_on_char '\n'
        |> List.filter_map (fun line ->
               match String.index_opt line ':' with
               | Some i ->
                 Some
                   ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
                     String.trim
                       (String.sub line (i + 1) (String.length line - i - 1)) )
               | None -> None)
      in
      let body =
        let n = String.length raw in
        let i = min n (header_end + 4) in
        String.sub raw i (n - i)
      in
      (status, headers, body))

let fetch ~port path =
  let status, _headers, body = fetch_full ~port path in
  (status, body)
