(* A dependency-free HTTP layer ([Unix] sockets only), in two parts:

   - a reusable server core ({!Server}) and client connection
     ({!Conn}) speaking enough HTTP/1.1 for our own endpoints:
     Content-Length framing, keep-alive connection reuse, a bounded
     header block, N accept/serve worker domains sharing one listening
     socket. Batch clients (the verdict service's engine fleet) issue
     many requests per connection without paying connect cost per
     round-trip.

   - the live observability exporter built on it: one worker domain on
     127.0.0.1 serving /metrics, /healthz, /audit and /explain from
     immutable snapshots ([Metrics.snapshot], the audit ring under its
     own mutex), so serving never blocks the engine beyond those locks.

   Deliberately not a web server: no TLS, no chunked encoding, no
   virtual hosts — good enough for a Prometheus scraper, the jitbulld
   verdict fleet, and a curl during an incident. *)

type health_thresholds = {
  max_queue_depth : int;
  max_stall_seconds : float;
  max_stale_results : int;
  max_install_p99_seconds : float;
}

let default_thresholds =
  {
    max_queue_depth = 64;
    max_stall_seconds = 1.0;
    max_stale_results = 1000;
    max_install_p99_seconds = 0.5;
  }

(* ---- request / response types ---- *)

type request = {
  rq_meth : string;
  rq_path : string;
  rq_query : (string * string) list;
  rq_headers : (string * string) list;  (* lowercased names *)
  rq_body : string;
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_body : string;
}

let respond ?(status = 200) ?(content_type = "text/plain") body =
  { rs_status = status; rs_content_type = content_type; rs_body = body }

let reason_of_status = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

(* ---- low-level IO: bounded buffered reads, full writes ---- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* A buffered reader over one socket. Unconsumed bytes live at
   [rd_off .. rd_off + rd_len) of [rd_buf]; on a keep-alive connection
   the leftover past one message belongs to the next. The buffer grows
   geometrically and refills append in place, so reading an N-byte
   message costs O(N) total — not O(N^2/chunk) as a string-concat
   accumulator would. *)
type reader = {
  rd_fd : Unix.file_descr;
  mutable rd_buf : Bytes.t;
  mutable rd_off : int;
  mutable rd_len : int;
}

let reader fd = { rd_fd = fd; rd_buf = Bytes.create 65536; rd_off = 0; rd_len = 0 }

exception Closed

(* Read one chunk from the socket into the buffer's tail, compacting or
   growing first when full; raises [Closed] on EOF. *)
let refill r =
  if r.rd_off + r.rd_len = Bytes.length r.rd_buf then
    if r.rd_off > 0 then begin
      Bytes.blit r.rd_buf r.rd_off r.rd_buf 0 r.rd_len;
      r.rd_off <- 0
    end
    else begin
      let bigger = Bytes.create (2 * Bytes.length r.rd_buf) in
      Bytes.blit r.rd_buf 0 bigger 0 r.rd_len;
      r.rd_buf <- bigger
    end;
  let pos = r.rd_off + r.rd_len in
  let room = Bytes.length r.rd_buf - pos in
  let rec go () =
    match Unix.read r.rd_fd r.rd_buf pos room with
    | 0 -> raise Closed
    | n -> r.rd_len <- r.rd_len + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Index just past the header terminator (relative to [rd_off]), and the
   terminator's width. Resumable: [from] is where to start scanning, so
   a retry after a refill re-examines only the (possibly split) tail
   instead of the whole buffer. *)
let find_headers_end r ~from =
  let buf = r.rd_buf and base = r.rd_off and len = r.rd_len in
  let rec go i =
    if i >= len then None
    else
      let c = Bytes.unsafe_get buf (base + i) in
      if
        c = '\r' && i + 3 < len
        && Bytes.unsafe_get buf (base + i + 1) = '\n'
        && Bytes.unsafe_get buf (base + i + 2) = '\r'
        && Bytes.unsafe_get buf (base + i + 3) = '\n'
      then Some (i, 4)
      else if c = '\n' && i + 1 < len && Bytes.unsafe_get buf (base + i + 1) = '\n'
      then Some (i, 2)
      else go (i + 1)
  in
  go from

let parse_headers block =
  String.split_on_char '\n' block
  |> List.filter_map (fun line ->
         match String.index_opt line ':' with
         | Some i ->
           Some
             ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
               String.trim (String.sub line (i + 1) (String.length line - i - 1))
             )
         | None -> None)

(* Read one HTTP message (request or response): the first line, the
   header alist and a Content-Length-framed body. Returns [None] on a
   clean EOF before any byte of a new message (the keep-alive peer went
   away); raises [Closed] mid-message. Bounded: the header block may not
   exceed 64 KiB, the body [max_body]. *)
let read_message ?(max_body = 16 * 1024 * 1024) r =
  let rec wait_headers ~from =
    match find_headers_end r ~from with
    | Some x -> x
    | None ->
      if r.rd_len > 65536 then failwith "header block too large";
      (* The terminator may straddle the refill boundary: back up by its
         width minus one before rescanning. *)
      let from = max 0 (r.rd_len - 3) in
      refill r;
      wait_headers ~from
  in
  match
    if r.rd_len = 0 then refill r
  with
  | exception Closed -> None
  | () ->
    let hdr_end, sep = wait_headers ~from:0 in
    let head = Bytes.sub_string r.rd_buf r.rd_off hdr_end in
    let first_line, header_block =
      match String.index_opt head '\n' with
      | Some i ->
        ( String.trim (String.sub head 0 i),
          String.sub head (i + 1) (String.length head - i - 1) )
      | None -> (String.trim head, "")
    in
    let headers = parse_headers header_block in
    let body_len =
      match List.assoc_opt "content-length" headers with
      | Some s -> ( match int_of_string_opt (String.trim s) with
        | Some n when n >= 0 && n <= max_body -> n
        | _ -> failwith "bad content-length")
      | None -> 0
    in
    let body_start = hdr_end + sep in
    while r.rd_len < body_start + body_len do
      refill r
    done;
    let body = Bytes.sub_string r.rd_buf (r.rd_off + body_start) body_len in
    r.rd_off <- r.rd_off + body_start + body_len;
    r.rd_len <- r.rd_len - (body_start + body_len);
    if r.rd_len = 0 then begin
      r.rd_off <- 0;
      (* Don't let one oversized message pin a huge buffer forever. *)
      if Bytes.length r.rd_buf > 1 lsl 20 then r.rd_buf <- Bytes.create 65536
    end;
    Some (first_line, headers, body)

(* ---- request-line parsing ---- *)

let parse_query qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | Some i ->
           Some
             ( String.sub kv 0 i,
               String.sub kv (i + 1) (String.length kv - i - 1) )
         | None -> if kv = "" then None else Some (kv, ""))

let split_target target =
  match String.index_opt target '?' with
  | Some i ->
    ( String.sub target 0 i,
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
  | None -> (target, [])

(* ---- the server core ---- *)

module Server = struct
  type t = {
    listen_fd : Unix.file_descr;
    s_port : int;
    stop_flag : bool Atomic.t;
    doms : unit Domain.t list;
    conns : int Atomic.t;
    reqs : int Atomic.t;
  }

  let render_response ~keep_alive (rs : response) =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n%s"
      rs.rs_status (reason_of_status rs.rs_status) rs.rs_content_type
      (String.length rs.rs_body)
      (if keep_alive then "keep-alive" else "close")
      rs.rs_body

  (* One connection: serve requests until the client closes, asks to
     close, errors, or exhausts [max_requests] (a runaway-client bound;
     the final response carries [Connection: close]). *)
  let serve_conn t ~max_requests ~handler client =
    let r = reader client in
    let served = ref 0 in
    let continue = ref true in
    while !continue && not (Atomic.get t.stop_flag) do
      match read_message r with
      | None -> continue := false
      | Some (line, headers, body) ->
        let meth, target, version =
          match String.split_on_char ' ' line with
          | m :: tgt :: v :: _ -> (m, tgt, v)
          | m :: tgt :: _ -> (m, tgt, "HTTP/1.0")
          | _ -> ("GET", "/", "HTTP/1.0")
        in
        let path, query = split_target target in
        let req =
          { rq_meth = meth; rq_path = path; rq_query = query;
            rq_headers = headers; rq_body = body }
        in
        incr served;
        Atomic.incr t.reqs;
        let conn_hdr =
          Option.map String.lowercase_ascii (List.assoc_opt "connection" headers)
        in
        let keep_alive =
          !served < max_requests
          &&
          match (version, conn_hdr) with
          | _, Some "close" -> false
          | "HTTP/1.0", Some "keep-alive" -> true
          | "HTTP/1.0", _ -> false
          | _, _ -> true
        in
        let resp =
          try handler req
          with e ->
            respond ~status:500 ~content_type:"text/plain"
              ("internal error: " ^ Printexc.to_string e ^ "\n")
        in
        write_all client (render_response ~keep_alive resp);
        if not keep_alive then continue := false
      | exception _ -> continue := false
    done

  (* Each worker domain accepts and hands every connection to its own
     systhread, so the number of simultaneously served keep-alive
     connections is not bounded by the worker count — a fleet of clients
     holds one persistent connection each, and a long-poll subscriber
     parks its thread without starving anyone. Threads within a domain
     interleave on blocking I/O; CPU-bound handler work spreads across
     domains by whichever wins the next accept. Connection threads are
     not joined by [stop]: they exit when their client hangs up (or with
     the process), while [stop] only tears down the accept loops. *)
  let worker_loop t ~max_requests ~handler =
    while not (Atomic.get t.stop_flag) do
      match Unix.accept t.listen_fd with
      | client, _ ->
        (* One write per HTTP message on both sides, so Nagle only adds
           latency (delayed-ACK stalls on small keep-alive round-trips). *)
        (try Unix.setsockopt client Unix.TCP_NODELAY true with _ -> ());
        Atomic.incr t.conns;
        ignore
          (Thread.create
             (fun () ->
               (try serve_conn t ~max_requests ~handler client with _ -> ());
               try Unix.close client with _ -> ())
             ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception _ ->
        (* listening socket closed by [stop] (or a transient accept error
           racing it): re-check the flag *)
        if not (Atomic.get t.stop_flag) then Unix.sleepf 0.01
    done

  let start ?(workers = 1) ?(max_requests_per_conn = 10_000) ~handler ~port () =
    let workers = max 1 workers in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 128
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let t =
      {
        listen_fd = fd;
        s_port = port;
        stop_flag = Atomic.make false;
        doms = [];
        conns = Atomic.make 0;
        reqs = Atomic.make 0;
      }
    in
    let doms =
      List.init workers (fun _ ->
          Domain.spawn (fun () ->
              worker_loop t ~max_requests:max_requests_per_conn ~handler))
    in
    { t with doms }

  let port t = t.s_port
  let connections t = Atomic.get t.conns
  let requests t = Atomic.get t.reqs

  let stop t =
    if not (Atomic.get t.stop_flag) then begin
      Atomic.set t.stop_flag true;
      (* closing the listening socket unblocks every accept *)
      (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
      (try Unix.close t.listen_fd with _ -> ());
      List.iter Domain.join t.doms
    end
end

(* ---- persistent client connection ---- *)

module Conn = struct
  type t = {
    fd : Unix.file_descr;
    rd : reader;
    host : string;
  }

  let set_timeout fd = function
    | None -> ()
    | Some s ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
       with _ -> ())

  let connect ?(host = "127.0.0.1") ?timeout_s ~port () =
    let addr =
      if String.equal host "127.0.0.1" || String.equal host "localhost" then
        Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       set_timeout fd timeout_s;
       (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
       Unix.connect fd (Unix.ADDR_INET (addr, port))
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    { fd; rd = reader fd; host }

  let close t = try Unix.close t.fd with _ -> ()

  (* Unblock a request in flight on another thread: shutdown makes its
     blocked read return EOF without racing the fd number the way a
     concurrent close would. *)
  let shutdown t = try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ()

  let parse_status_line line =
    match String.split_on_char ' ' line with
    | _http :: code :: _ -> ( try int_of_string code with _ -> 0)
    | _ -> 0

  (* One request/response round-trip on the persistent connection.
     [timeout_s] overrides the socket receive timeout for this request
     (long-poll subscribes pass a large one). Raises [Closed] when the
     server hung up, [Unix_error (EAGAIN, …)] on timeout. *)
  let request t ?(meth = "GET") ?(headers = []) ?(body = "")
      ?(keep_alive = true) ?timeout_s path =
    set_timeout t.fd timeout_s;
    let extra =
      String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
    in
    write_all t.fd
      (Printf.sprintf
         "%s %s HTTP/1.1\r\nHost: %s\r\nConnection: %s\r\n%sContent-Length: %d\r\n\r\n%s"
         meth path t.host
         (if keep_alive then "keep-alive" else "close")
         extra (String.length body) body);
    match read_message t.rd with
    | None -> raise Closed
    | Some (line, headers, rbody) -> (parse_status_line line, headers, rbody)
end

(* ---- observability route handlers ---- *)

(* Reproduction version, stamped into jitbull_build_info so fleet
   dashboards can tell engine generations apart (dune-project carries no
   version field; bump alongside notable PRs). *)
let version = "0.9.0"

(* Wall-clock stamp taken at module initialization — close enough to
   exec for process_start_time_seconds' purpose (uptime and restart
   detection on fleet dashboards). *)
let process_start = Unix.gettimeofday ()

let build_info_body () =
  let esc = Metrics.escape_label_value in
  Printf.sprintf
    "# HELP jitbull_build_info Build metadata as labels; value is always 1.\n\
     # TYPE jitbull_build_info gauge\n\
     jitbull_build_info{version=\"%s\",ocaml=\"%s\"} 1\n\
     # HELP process_start_time_seconds Unix time the process started.\n\
     # TYPE process_start_time_seconds gauge\n\
     process_start_time_seconds %.6f\n"
    (esc version) (esc Sys.ocaml_version) process_start

let metrics_body obs =
  build_info_body ()
  ^ Metrics.render_prometheus (Obs.view (Some obs))
  ^ Audit.render_prometheus (Obs.audit obs)
  ^ (match Obs.irdiff obs with
    | Some ring -> Irdiff.render_prometheus ring
    | None -> "")

type check = {
  ck_name : string;
  ck_value : float;
  ck_threshold : float;
  ck_ok : bool;
}

let health_checks thresholds obs =
  let view = Obs.view (Some obs) in
  let gauge name =
    List.assoc_opt name view.Metrics.v_gauges |> Option.value ~default:0.0
  in
  let counter name =
    Metrics.find_counter view name |> Option.value ~default:0
  in
  let check name value threshold =
    { ck_name = name; ck_value = value; ck_threshold = threshold; ck_ok = value <= threshold }
  in
  (* quantile over the live histogram, not a mean derived from the
     snapshot: one slow install must not hide behind many fast ones.
     [Metrics.histogram] is get-or-create — pass the engine's bounds so
     an exporter-first probe registers the grid the engine expects *)
  let install_p99 =
    Metrics.quantile
      (Metrics.histogram ~bounds:Metrics.queue_latency_bounds
         (Obs.metrics obs) "compile.install_latency_seconds")
      0.99
  in
  [
    check "queue_depth"
      (gauge "compile.queue_depth")
      (float_of_int thresholds.max_queue_depth);
    check "main_stall_seconds"
      (gauge "engine.main_stall_seconds")
      thresholds.max_stall_seconds;
    check "stale_results"
      (float_of_int (counter "engine.stale_results"))
      (float_of_int thresholds.max_stale_results);
    check "install_latency_p99_seconds" install_p99
      thresholds.max_install_p99_seconds;
  ]

let health_body thresholds obs =
  let checks = health_checks thresholds obs in
  let ok = List.for_all (fun c -> c.ck_ok) checks in
  let json =
    Jsonx.Assoc
      [
        ("status", Jsonx.String (if ok then "ok" else "fail"));
        ( "checks",
          Jsonx.List
            (List.map
               (fun c ->
                 Jsonx.Assoc
                   [
                     ("name", Jsonx.String c.ck_name);
                     ("value", Jsonx.Float c.ck_value);
                     ("threshold", Jsonx.Float c.ck_threshold);
                     ("ok", Jsonx.Bool c.ck_ok);
                   ])
               checks) );
      ]
  in
  ((if ok then 200 else 503), Jsonx.to_string json)

let bad_request msg =
  respond ~status:400 ~content_type:"application/json"
    (Jsonx.to_string (Jsonx.Assoc [ ("error", Jsonx.String msg) ]))

(* The uniform 404: JSON body + application/json, shared by the
   exporter fallback and the verdict service's own fallback so every
   miss looks the same to fleet tooling. *)
let not_found () =
  respond ~status:404 ~content_type:"application/json"
    (Jsonx.to_string (Jsonx.Assoc [ ("error", Jsonx.String "not found") ]))

(* Query-parameter counts are strict: a negative, non-numeric or huge
   value is a client error (400), never silently defaulted. *)
let parse_count ?(max_value = 10_000) name query ~default =
  match List.assoc_opt name query with
  | None -> Ok default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | None -> Error (Printf.sprintf "%s: not an integer" name)
    | Some n when n < 0 -> Error (Printf.sprintf "%s: must be non-negative" name)
    | Some n when n > max_value ->
      Error (Printf.sprintf "%s: too large (max %d)" name max_value)
    | Some n -> Ok n)

let audit_response obs query =
  match parse_count "n" query ~default:32 with
  | Error msg -> bad_request msg
  | Ok n ->
    let records = Audit.last (Obs.audit obs) n in
    respond ~content_type:"application/json"
      (Jsonx.to_string (Jsonx.List (List.map Audit.record_to_json records)))

let explain_response ~can_disable obs query =
  let au = Obs.audit obs in
  match List.assoc_opt "id" query with
  | None ->
    (* recent-decisions index *)
    (match parse_count "n" query ~default:32 with
    | Error msg -> bad_request msg
    | Ok n ->
      let have_diff seq =
        match Obs.irdiff obs with
        | Some ring -> Irdiff.find ring seq <> None
        | None -> false
      in
      respond ~content_type:"text/html; charset=utf-8"
        (Explain.index_html ~limit:n ~have_diff (Audit.records au)))
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | None -> bad_request "id: not an integer"
    | Some id ->
      let records = Audit.records au in
      (match List.find_opt (fun (r : Audit.record) -> r.Audit.seq = id) records with
      | None ->
        respond ~status:404 ~content_type:"application/json"
          (Jsonx.to_string
             (Jsonx.Assoc
                [
                  ( "error",
                    Jsonx.String
                      "no such decision: never made, or evicted from the audit \
                       ring" );
                ]))
      | Some r ->
        let e = Explain.resolve ?irdiff:(Obs.irdiff obs) ~history:records r in
        (match List.assoc_opt "format" query with
        | Some "text" ->
          respond ~content_type:"text/plain; charset=utf-8"
            (Explain.to_text ?can_disable e)
        | _ ->
          respond ~content_type:"text/html; charset=utf-8"
            (Explain.to_html ?can_disable e))))

(* The observability routes, shared between the standalone exporter and
   the verdict service (which mounts them behind its own). [None] =
   not an obs route. *)
let obs_routes ?(thresholds = default_thresholds) ?can_disable ~obs req =
  match req.rq_path with
  | "/metrics" ->
    Some (respond ~content_type:"text/plain; version=0.0.4" (metrics_body obs))
  | "/healthz" ->
    let status, body = health_body thresholds obs in
    Some (respond ~status ~content_type:"application/json" body)
  | "/audit" -> Some (audit_response obs req.rq_query)
  | "/explain" -> Some (explain_response ~can_disable obs req.rq_query)
  | "/profile" ->
    (* collapsed-stack samples from the process-global profiler; empty
       (but 200) when profiling was never started *)
    Some (respond ~content_type:"text/plain; charset=utf-8" (Profile.collapsed ()))
  | _ -> None

(* ---- the standalone exporter (jsrun --serve-metrics) ---- *)

type t = Server.t

let start ?(thresholds = default_thresholds) ?can_disable ~obs ~port () =
  Server.start ~workers:1
    ~handler:(fun req ->
      match obs_routes ~thresholds ?can_disable ~obs req with
      | Some resp -> resp
      | None -> not_found ())
    ~port ()

let port = Server.port
let stop = Server.stop
let connections = Server.connections
let requests = Server.requests

(* ---- loopback client (tests, bench, CI smoke) ---- *)

let fetch_full ~port path =
  let c = Conn.connect ~port () in
  Fun.protect
    ~finally:(fun () -> Conn.close c)
    (fun () -> Conn.request c ~keep_alive:false path)

let fetch ~port path =
  let status, _headers, body = fetch_full ~port path in
  (status, body)
