(** A dependency-free live-export HTTP endpoint ([Unix] sockets only):
    a single accept loop on its own domain, bound to 127.0.0.1, one
    request per connection. Routes:

    - [/metrics] — Prometheus text: the full metrics registry
      ({!Metrics.render_prometheus}) followed by the audit aggregates
      ({!Audit.render_prometheus}) and, when explain capture is on, the
      IR-diff aggregates ({!Irdiff.render_prometheus}).
    - [/healthz] — JSON health report; 200 when every check passes,
      503 otherwise. Checks (against {!health_thresholds}):
      [compile.queue_depth] gauge, [engine.main_stall_seconds] gauge,
      [engine.stale_results] counter, and the live p99 of
      [compile.install_latency_seconds] ({!Metrics.quantile}).
    - [/audit?n=K] — the K most recent audit records (default 32),
      newest first, as a JSON array of {!Audit.record_to_json} objects.
    - [/explain] — HTML index of recent decisions
      ({!Explain.index_html}; [?n=K] as for [/audit]).
    - [/explain?id=N] — explanation of decision [N] ({!Explain}): HTML
      by default, plain text with [&format=text]. 404 (JSON error) when
      [N] was never decided or has been evicted from the audit ring.

    Malformed query parameters (non-numeric, negative, or huge [n]/[id])
    are 400 with a JSON error body; JSON endpoints carry
    [Content-Type: application/json]. Anything else is 404. The handler
    reads snapshots only — serving never blocks the engine beyond the
    registry/ring mutexes. *)

type health_thresholds = {
  max_queue_depth : int;  (** compile queue depth at the last safepoint *)
  max_stall_seconds : float;  (** cumulative main-thread compile stall *)
  max_stale_results : int;  (** background compiles discarded as stale *)
  max_install_p99_seconds : float;
      (** p99 publish → safepoint-install latency *)
}

(** queue ≤ 64, stall ≤ 1s, stale ≤ 1000, install p99 ≤ 0.5s. *)
val default_thresholds : health_thresholds

type t

(** [start ~obs ~port ()] binds 127.0.0.1:[port] ([port = 0] picks a free
    one — read it back with {!port}) and spawns the serving domain.
    [can_disable] (pass the pipeline's [can_disable]) lets [/explain]
    reports name the mandatory pass behind a forbid verdict.
    Raises [Unix.Unix_error] if the bind fails. *)
val start :
  ?thresholds:health_thresholds ->
  ?can_disable:(string -> bool) ->
  obs:Obs.t ->
  port:int ->
  unit ->
  t

(** The bound port (useful after [~port:0]). *)
val port : t -> int

(** Close the listening socket and join the serving domain. Idempotent. *)
val stop : t -> unit

(** [fetch ~port path] — minimal loopback HTTP client for tests, bench
    and CI smoke: returns (status code, body). Blocking; raises
    [Unix.Unix_error] when nothing listens on [port]. *)
val fetch : port:int -> string -> int * string

(** Like {!fetch} but also returns the response headers as
    (lowercased name, value) pairs. *)
val fetch_full : port:int -> string -> int * (string * string) list * string
