(** A dependency-free HTTP layer ([Unix] sockets only), in two parts: a
    reusable keep-alive server core ({!Server}) + persistent client
    connection ({!Conn}), and the live observability exporter built on
    them.

    The server core speaks enough HTTP/1.1 for our own endpoints:
    Content-Length framing on both requests and responses, keep-alive
    connection reuse (a batch client issues many requests per
    connection without paying connect cost per round-trip), a bounded
    header block, and N accept worker domains sharing one listening
    socket, each serving every accepted connection on its own thread
    (concurrent keep-alive connections are not bounded by the worker
    count). The verdict service ([Jitbull_service]) mounts
    its routes on the same core.

    The exporter serves, from one worker on 127.0.0.1:

    - [/metrics] — Prometheus text: the full metrics registry
      ({!Metrics.render_prometheus}) followed by the audit aggregates
      ({!Audit.render_prometheus}) and, when explain capture is on, the
      IR-diff aggregates ({!Irdiff.render_prometheus}).
    - [/healthz] — JSON health report; 200 when every check passes,
      503 otherwise. Checks (against {!health_thresholds}):
      [compile.queue_depth] gauge, [engine.main_stall_seconds] gauge,
      [engine.stale_results] counter, and the live p99 of
      [compile.install_latency_seconds] ({!Metrics.quantile}).
    - [/audit?n=K] — the K most recent audit records (default 32),
      newest first, as a JSON array of {!Audit.record_to_json} objects.
    - [/explain] — HTML index of recent decisions
      ({!Explain.index_html}; [?n=K] as for [/audit]).
    - [/explain?id=N] — explanation of decision [N] ({!Explain}): HTML
      by default, plain text with [&format=text]. 404 (JSON error) when
      [N] was never decided or has been evicted from the audit ring.
    - [/profile] — collapsed-stack samples from the process-global
      sampling profiler ({!Profile.collapsed}); empty body (but 200)
      when profiling was never started.

    Malformed query parameters (non-numeric, negative, or huge [n]/[id])
    are 400 with a JSON error body; JSON endpoints carry
    [Content-Type: application/json]. Anything else is 404. The handlers
    read snapshots only — serving never blocks the engine beyond the
    registry/ring mutexes. *)

type health_thresholds = {
  max_queue_depth : int;  (** compile queue depth at the last safepoint *)
  max_stall_seconds : float;  (** cumulative main-thread compile stall *)
  max_stale_results : int;  (** background compiles discarded as stale *)
  max_install_p99_seconds : float;
      (** p99 publish → safepoint-install latency *)
}

(** queue ≤ 64, stall ≤ 1s, stale ≤ 1000, install p99 ≤ 0.5s. *)
val default_thresholds : health_thresholds

(** {1 Requests and responses} *)

type request = {
  rq_meth : string;  (** "GET", "POST", … *)
  rq_path : string;  (** path without the query string *)
  rq_query : (string * string) list;
  rq_headers : (string * string) list;  (** names lowercased *)
  rq_body : string;  (** Content-Length-framed request body *)
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_body : string;
}

val respond : ?status:int -> ?content_type:string -> string -> response

(** 400 with a JSON [{"error": msg}] body. *)
val bad_request : string -> response

(** The uniform 404: JSON [{"error": "not found"}] body with
    [Content-Type: application/json] — shared by every route fallback. *)
val not_found : unit -> response

(** Reproduction version stamped into [jitbull_build_info]. *)
val version : string

(** [parse_count name query ~default] — strict query-parameter count
    parsing: a negative, non-numeric or huge value is an [Error]
    (serve it as 400), never silently defaulted. *)
val parse_count :
  ?max_value:int ->
  string ->
  (string * string) list ->
  default:int ->
  (int, string) result

(** {1 Server core} *)

module Server : sig
  type t

  (** [start ~handler ~port ()] binds 127.0.0.1:[port] ([port = 0]
      picks a free one — read it back with {!port}) and spawns
      [workers] accept domains sharing the listening socket, each
      serving every connection it accepts on a dedicated thread.
      Each connection is served keep-alive until the client closes,
      sends [Connection: close], or exhausts [max_requests_per_conn].
      Handler exceptions become 500 responses; the connection survives.
      Raises [Unix.Unix_error] if the bind fails. *)
  val start :
    ?workers:int ->
    ?max_requests_per_conn:int ->
    handler:(request -> response) ->
    port:int ->
    unit ->
    t

  val port : t -> int

  (** Total connections accepted / requests served so far — the
      keep-alive regression test asserts requests can outnumber
      connections. *)
  val connections : t -> int

  val requests : t -> int

  (** Close the listening socket and join the worker domains.
      Idempotent. *)
  val stop : t -> unit
end

(** {1 Persistent client connection} *)

(** Raised when the peer closes the connection mid-exchange. *)
exception Closed

module Conn : sig
  type t

  (** [connect ~port ()] opens one TCP connection to [host] (default
      127.0.0.1) and keeps it for many {!request} round-trips.
      [timeout_s] arms a socket send/receive timeout. Raises
      [Unix.Unix_error] when nothing listens there. *)
  val connect : ?host:string -> ?timeout_s:float -> port:int -> unit -> t

  (** One request/response round-trip: returns (status, headers, body)
      with header names lowercased. [timeout_s] overrides the socket
      receive timeout for this request only (long-poll subscribes pass
      a large one). Raises {!Closed} when the server hung up,
      [Unix.Unix_error (EAGAIN, _, _)] on timeout — the connection must
      be considered dead after either. *)
  val request :
    t ->
    ?meth:string ->
    ?headers:(string * string) list ->
    ?body:string ->
    ?keep_alive:bool ->
    ?timeout_s:float ->
    string ->
    int * (string * string) list * string

  val close : t -> unit

  (** Shut the socket down both ways without closing the descriptor:
      a {!request} blocked on another thread returns ({!Closed})
      immediately. Used to interrupt long polls on shutdown. *)
  val shutdown : t -> unit
end

(** {1 Observability routes} *)

(** The exporter's routes as a composable handler fragment: [Some
    response] for [/metrics], [/healthz], [/audit], [/explain] and
    [/profile], [None] for anything else (mount your own routes first,
    fall back to 404). [can_disable] (pass the pipeline's
    [can_disable]) lets [/explain] reports name the mandatory pass
    behind a forbid verdict. *)
val obs_routes :
  ?thresholds:health_thresholds ->
  ?can_disable:(string -> bool) ->
  obs:Obs.t ->
  request ->
  response option

(** {1 The standalone exporter} *)

type t

(** [start ~obs ~port ()] — the observability exporter: one worker
    domain serving {!obs_routes} (404 otherwise) on 127.0.0.1:[port].
    Raises [Unix.Unix_error] if the bind fails. *)
val start :
  ?thresholds:health_thresholds ->
  ?can_disable:(string -> bool) ->
  obs:Obs.t ->
  port:int ->
  unit ->
  t

(** The bound port (useful after [~port:0]). *)
val port : t -> int

(** Connections accepted / requests served — see {!Server.connections}. *)
val connections : t -> int

val requests : t -> int

(** Close the listening socket and join the serving domain. Idempotent. *)
val stop : t -> unit

(** [fetch ~port path] — one-shot loopback HTTP GET for tests, bench
    and CI smoke: returns (status code, body). Blocking; raises
    [Unix.Unix_error] when nothing listens on [port]. *)
val fetch : port:int -> string -> int * string

(** Like {!fetch} but also returns the response headers as
    (lowercased name, value) pairs. *)
val fetch_full : port:int -> string -> int * (string * string) list * string
