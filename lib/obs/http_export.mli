(** A dependency-free live-export HTTP endpoint ([Unix] sockets only):
    a single accept loop on its own domain, bound to 127.0.0.1, one
    request per connection. Routes:

    - [/metrics] — Prometheus text: the full metrics registry
      ({!Metrics.render_prometheus}) followed by the audit aggregates
      ({!Audit.render_prometheus}).
    - [/healthz] — JSON health report; 200 when every check passes,
      503 otherwise. Checks (against {!health_thresholds}):
      [compile.queue_depth] gauge, [engine.main_stall_seconds] gauge,
      [engine.stale_results] counter.
    - [/audit?n=K] — the K most recent audit records (default 32),
      newest first, as a JSON array of {!Audit.record_to_json} objects.

    Anything else is 404. The handler reads snapshots only — serving
    never blocks the engine beyond the registry/ring mutexes. *)

type health_thresholds = {
  max_queue_depth : int;  (** compile queue depth at the last safepoint *)
  max_stall_seconds : float;  (** cumulative main-thread compile stall *)
  max_stale_results : int;  (** background compiles discarded as stale *)
}

(** queue ≤ 64, stall ≤ 1s, stale ≤ 1000. *)
val default_thresholds : health_thresholds

type t

(** [start ~obs ~port ()] binds 127.0.0.1:[port] ([port = 0] picks a free
    one — read it back with {!port}) and spawns the serving domain.
    Raises [Unix.Unix_error] if the bind fails. *)
val start : ?thresholds:health_thresholds -> obs:Obs.t -> port:int -> unit -> t

(** The bound port (useful after [~port:0]). *)
val port : t -> int

(** Close the listening socket and join the serving domain. Idempotent. *)
val stop : t -> unit

(** [fetch ~port path] — minimal loopback HTTP client for tests, bench
    and CI smoke: returns (status code, body). Blocking; raises
    [Unix.Unix_error] when nothing listens on [port]. *)
val fetch : port:int -> string -> int * string
