(* Bounded ring of per-compile IR diffs, keyed by audit sequence number.
   Same discipline as the audit ring: one mutex serializes helper compile
   domains and the main thread, cumulative aggregates survive eviction. *)

module Intern = Jitbull_util.Intern

type pass_diff = {
  pd_pass : string;
  pd_instrs_before : int;
  pd_instrs_after : int;
  pd_blocks_before : int;
  pd_blocks_after : int;
  pd_opcodes_added : (string * int) list;
  pd_opcodes_removed : (string * int) list;
  pd_chains_added : (Intern.id * int) list;
  pd_chains_removed : (Intern.id * int) list;
}

type compile_diff = {
  cd_func : string;
  cd_total_passes : int;
  cd_passes : pass_diff list;
  cd_capture_seconds : float;
}

type t = {
  cap : int;
  ring : (int * compile_diff) option array;
  mutable head : int;
  mutable total : int;
  mu : Mutex.t;
  contributions : (string * string, int) Hashtbl.t;
      (* (pass, cve) → cumulative sub-chain instances introduced *)
}

let create ?(capacity = 64) () =
  let cap = max 1 capacity in
  {
    cap;
    ring = Array.make cap None;
    head = 0;
    total = 0;
    mu = Mutex.create ();
    contributions = Hashtbl.create 16;
  }

let capacity t = t.cap

let total t = t.total

let attach t ~seq diff =
  Mutex.lock t.mu;
  t.ring.(t.head) <- Some (seq, diff);
  t.head <- (t.head + 1) mod t.cap;
  t.total <- t.total + 1;
  Mutex.unlock t.mu

let find t seq =
  Mutex.lock t.mu;
  let out = ref None in
  Array.iter
    (function
      | Some (s, d) when s = seq -> out := Some d
      | _ -> ())
    t.ring;
  Mutex.unlock t.mu;
  !out

let seqs t =
  Mutex.lock t.mu;
  let out =
    Array.to_list t.ring
    |> List.filter_map (function Some (s, _) -> Some s | None -> None)
    |> List.sort compare
  in
  Mutex.unlock t.mu;
  out

let record_contribution t ~pass ~cve n =
  if n > 0 then begin
    Mutex.lock t.mu;
    let key = (pass, cve) in
    Hashtbl.replace t.contributions key
      (n + Option.value ~default:0 (Hashtbl.find_opt t.contributions key));
    Mutex.unlock t.mu
  end

let render_prometheus t =
  Mutex.lock t.mu;
  let total = t.total in
  let contribs =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.contributions []
    |> List.sort compare
  in
  Mutex.unlock t.mu;
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  line "# TYPE jitbull_explain_diffs_total counter\n";
  line "jitbull_explain_diffs_total %d\n" total;
  if contribs <> [] then begin
    line "# TYPE jitbull_explain_chains_introduced_total counter\n";
    List.iter
      (fun ((pass, cve), n) ->
        line "jitbull_explain_chains_introduced_total{pass=\"%s\",cve=\"%s\"} %d\n"
          (Metrics.escape_label_value pass)
          (Metrics.escape_label_value cve)
          n)
      contribs
  end;
  Buffer.contents buf

let chain_key = Intern.to_string
