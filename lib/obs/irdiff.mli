(** Bounded ring of per-compile IR diffs: the raw material behind
    {!Explain}.

    When explain capture is enabled ({!Obs.create} with
    [~explain_capacity]), the analyzer summarizes each compile's snapshot
    trace into one {!compile_diff} — per pass, the instruction/block
    deltas, the opcode multiset diff, and the DNA sub-chains the pass
    introduced or destroyed (the δ⁺/δ⁻ sides the comparator scored,
    keyed by {!Jitbull_util.Intern} ids exactly like [Db]'s postings) —
    and attaches it under the audit record's [seq]. Diffs live in a
    mutexed ring of the last K compiles (oldest evicted), so helper
    compile domains attach concurrently with the main thread and memory
    stays bounded no matter how long the engine runs.

    The ring also keeps a cumulative [(pass, cve)] contribution count —
    how many sub-chain instances each pass introduced on compiles where
    that CVE matched — surfaced as
    [jitbull_explain_chains_introduced_total{pass,cve}]. *)

(** IR change one pass made during one compile, as seen between its
    surrounding snapshots. Chains are the Δ sides of the paper's DNA
    vector: [pd_chains_added] is δ⁺ (sub-chain id → multiplicity),
    [pd_chains_removed] is δ⁻, both sorted by materialized key. *)
type pass_diff = {
  pd_pass : string;
  pd_instrs_before : int;
  pd_instrs_after : int;
  pd_blocks_before : int;
  pd_blocks_after : int;
  pd_opcodes_added : (string * int) list;  (** opcode → count, sorted *)
  pd_opcodes_removed : (string * int) list;
  pd_chains_added : (Jitbull_util.Intern.id * int) list;
  pd_chains_removed : (Jitbull_util.Intern.id * int) list;
}

type compile_diff = {
  cd_func : string;
  cd_total_passes : int;  (** pipeline passes the compile ran *)
  cd_passes : pass_diff list;  (** only passes that changed the IR *)
  cd_capture_seconds : float;
}

type t

(** Ring of at most [capacity] (default 64, min 1) compile diffs. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Diffs ever attached (≥ retained). *)
val total : t -> int

(** [attach t ~seq diff] — file [diff] under audit sequence number [seq],
    evicting the oldest diff when full. *)
val attach : t -> seq:int -> compile_diff -> unit

(** The diff attached under [seq], if not yet evicted. *)
val find : t -> int -> compile_diff option

(** Retained sequence numbers, oldest first. *)
val seqs : t -> int list

(** [record_contribution t ~pass ~cve n] — account [n] sub-chain
    instances introduced by [pass] on a compile where [cve] matched.
    Cumulative: survives ring eviction. *)
val record_contribution : t -> pass:string -> cve:string -> int -> unit

(** [jitbull_explain_diffs_total] and
    [jitbull_explain_chains_introduced_total{pass,cve}]. *)
val render_prometheus : t -> string

(** Materialize a sub-chain id ({!Intern.to_string}). *)
val chain_key : Jitbull_util.Intern.id -> string
