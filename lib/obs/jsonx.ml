type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ---- encoding ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* shortest decimal that round-trips; 17 significant digits always do *)
  let s = Printf.sprintf "%.15g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  (* keep integral floats distinguishable from ints across a round trip *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let add_utf8 buf code =
    (* BMP code point to UTF-8 *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let finished = ref false in
    while not !finished do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with
      | '"' ->
        incr pos;
        finished := true
      | '\\' ->
        incr pos;
        if !pos >= n then fail "truncated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
            with _ -> fail "bad \\u escape"
          in
          add_utf8 buf code;
          pos := !pos + 4
        | _ -> fail "unknown escape");
        incr pos
      | c ->
        Buffer.add_char buf c;
        incr pos)
    done;
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> String (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "unexpected character"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Assoc []
    end
    else begin
      let fields = ref [] in
      let continue = ref true in
      while !continue do
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
          incr pos;
          continue := false
        | _ -> fail "expected , or }"
      done;
      Assoc (List.rev !fields)
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      List []
    end
    else begin
      let items = ref [] in
      let continue = ref true in
      while !continue do
        let v = value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
          incr pos;
          continue := false
        | _ -> fail "expected , or ]"
      done;
      List (List.rev !items)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- accessors ---- *)

let member key = function
  | Assoc fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let to_int = function
  | Int i -> i
  | _ -> raise (Parse_error "expected int")

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> raise (Parse_error "expected number")

let to_str = function
  | String s -> s
  | _ -> raise (Parse_error "expected string")

let to_list_exn = function
  | List l -> l
  | _ -> raise (Parse_error "expected list")
