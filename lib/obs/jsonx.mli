(** Minimal JSON tree, encoder and parser — enough for the telemetry
    event sink and machine-readable bench output without pulling an
    external dependency into the core libraries.

    Encoding guarantees round-trip fidelity for floats (shortest
    representation that parses back to the same bits, falling back to 17
    significant digits) and escapes control characters; non-finite floats
    encode as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string

exception Parse_error of string

(** [parse s] decodes one JSON value; raises {!Parse_error} on malformed
    input or trailing garbage. [\u] escapes outside the BMP are not
    combined into surrogate pairs (each half decodes independently). *)
val parse : string -> t

(** Accessors: [member key json] is the value under [key] of an [Assoc]
    (Null when absent or not an object); the [to_*] coercions raise
    {!Parse_error} on a type mismatch ([to_float] accepts [Int]). *)

val member : string -> t -> t
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_list_exn : t -> t list
