(* Thread-safety: counters are atomics (helper domains bump them during
   background compiles, the VM dispatch loop bumps them on the main
   thread); gauges are single-word stores, benign to race; histograms take
   a per-histogram mutex around the multi-field update; the registry
   itself takes one mutex around get-or-create and snapshot. *)

type counter = {
  c_name : string;
  c_value : int Atomic.t;
}

type gauge = {
  g_name : string;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_mu : Mutex.t;
  bounds : float array;  (* strictly increasing upper bounds *)
  buckets : int array;  (* length = Array.length bounds + 1 (+∞ bucket) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let locked mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let create () =
  {
    mu = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 32;
  }

let counter t name =
  locked t.mu (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.replace t.counters name c;
        c)

let incr c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value

let gauge t name =
  locked t.mu (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_value = 0.0 } in
        Hashtbl.replace t.gauges name g;
        g)

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let default_latency_bounds =
  [|
    1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3; 1e-2; 2e-2;
    5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
  |]

(* Queue waits and install latencies cluster well under the compile times
   the default grid targets: extend the fine end down to 100ns but stop
   at 1s — anything longer is a stall, not a queue. *)
let queue_latency_bounds =
  [|
    1e-7; 2e-7; 5e-7; 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3;
    5e-3; 1e-2; 2e-2; 5e-2; 0.1; 0.25; 0.5; 1.0;
  |]

(* IR-size deltas and other small-count distributions: 0 gets its own
   bucket (most pass runs change nothing), then a 1-2-5 grid to 5000. *)
let size_bounds =
  [| 0.0; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0 |]

let histogram ?(bounds = default_latency_bounds) t name =
  locked t.mu (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
        let k = Array.length bounds in
        for i = 1 to k - 1 do
          if bounds.(i) <= bounds.(i - 1) then
            invalid_arg (Printf.sprintf "Metrics.histogram %s: bounds not increasing" name)
        done;
        let h =
          {
            h_name = name;
            h_mu = Mutex.create ();
            bounds;
            buckets = Array.make (k + 1) 0;
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
          }
        in
        Hashtbl.replace t.histograms name h;
        h)

let bucket_index bounds v =
  (* first bucket whose upper bound is >= v; binary search over the fixed
     array keeps [observe] O(log #buckets) with a tiny constant *)
  let k = Array.length bounds in
  if k = 0 || v > bounds.(k - 1) then k
  else begin
    let lo = ref 0 and hi = ref (k - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h v =
  let i = bucket_index h.bounds v in
  locked h.h_mu (fun () ->
      h.buckets.(i) <- h.buckets.(i) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v)

let quantile_unlocked h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.h_count in
    let k = Array.length h.bounds in
    let result = ref h.h_max in
    let cum = ref 0 in
    let lower = ref 0.0 in
    (try
       for i = 0 to k do
         let upper = if i < k then h.bounds.(i) else h.h_max in
         let c = h.buckets.(i) in
         if c > 0 && float_of_int (!cum + c) >= rank then begin
           let frac = (rank -. float_of_int !cum) /. float_of_int c in
           result := !lower +. (frac *. (upper -. !lower));
           raise Exit
         end;
         cum := !cum + c;
         lower := upper
       done
     with Exit -> ());
    Float.min h.h_max (Float.max h.h_min !result)
  end

let quantile h q = locked h.h_mu (fun () -> quantile_unlocked h q)

(* ---- snapshots ---- *)

type histogram_view = {
  hv_name : string;
  hv_count : int;
  hv_sum : float;
  hv_min : float;
  hv_max : float;
  hv_buckets : (float * int) list;
  hv_p50 : float;
  hv_p90 : float;
  hv_p99 : float;
}

type view = {
  v_counters : (string * int) list;
  v_gauges : (string * float) list;
  v_histograms : histogram_view list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot t =
  locked t.mu (fun () ->
      let counters =
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_value) :: acc) t.counters []
        |> List.sort by_name
      in
      let gauges =
        Hashtbl.fold (fun name g acc -> (name, g.g_value) :: acc) t.gauges []
        |> List.sort by_name
      in
      let histograms =
        Hashtbl.fold
          (fun name h acc ->
            locked h.h_mu (fun () ->
                let k = Array.length h.bounds in
                let buckets =
                  List.init (k + 1) (fun i ->
                      ((if i < k then h.bounds.(i) else infinity), h.buckets.(i)))
                in
                {
                  hv_name = name;
                  hv_count = h.h_count;
                  hv_sum = h.h_sum;
                  hv_min = (if h.h_count = 0 then 0.0 else h.h_min);
                  hv_max = (if h.h_count = 0 then 0.0 else h.h_max);
                  hv_buckets = buckets;
                  hv_p50 = quantile_unlocked h 0.5;
                  hv_p90 = quantile_unlocked h 0.9;
                  hv_p99 = quantile_unlocked h 0.99;
                })
            :: acc)
          t.histograms []
        |> List.sort (fun a b -> String.compare a.hv_name b.hv_name)
      in
      { v_counters = counters; v_gauges = gauges; v_histograms = histograms })

let find_counter view name = List.assoc_opt name view.v_counters

let find_histogram view name =
  List.find_opt (fun hv -> String.equal hv.hv_name name) view.v_histograms

(* ---- rendering ---- *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

(* Label values keep their text verbatim; the exposition format escapes
   backslash, double quote and newline (in that order of care: escaping
   the backslash first keeps the mapping injective). *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_prometheus view =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v))
    view.v_counters;
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %g\n" name name v))
    view.v_gauges;
  List.iter
    (fun hv ->
      let name = sanitize hv.hv_name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
      let cum = ref 0 in
      List.iter
        (fun (le, c) ->
          cum := !cum + c;
          let le_s = if Float.is_finite le then Printf.sprintf "%g" le else "+Inf" in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le_s !cum))
        hv.hv_buckets;
      Buffer.add_string buf (Printf.sprintf "%s_sum %.9g\n" name hv.hv_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name hv.hv_count))
    view.v_histograms;
  Buffer.contents buf

let view_to_json view =
  let histogram_json hv =
    Jsonx.Assoc
      [
        ("count", Jsonx.Int hv.hv_count);
        ("sum", Jsonx.Float hv.hv_sum);
        ("min", Jsonx.Float hv.hv_min);
        ("max", Jsonx.Float hv.hv_max);
        ("p50", Jsonx.Float hv.hv_p50);
        ("p90", Jsonx.Float hv.hv_p90);
        ("p99", Jsonx.Float hv.hv_p99);
        ( "buckets",
          Jsonx.List
            (List.map
               (fun (le, c) ->
                 Jsonx.Assoc
                   [
                     ("le", if Float.is_finite le then Jsonx.Float le else Jsonx.String "+Inf");
                     ("count", Jsonx.Int c);
                   ])
               hv.hv_buckets) );
      ]
  in
  Jsonx.Assoc
    [
      ("counters", Jsonx.Assoc (List.map (fun (k, v) -> (k, Jsonx.Int v)) view.v_counters));
      ("gauges", Jsonx.Assoc (List.map (fun (k, v) -> (k, Jsonx.Float v)) view.v_gauges));
      ( "histograms",
        Jsonx.Assoc (List.map (fun hv -> (hv.hv_name, histogram_json hv)) view.v_histograms)
      );
    ]
