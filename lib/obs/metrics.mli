(** The metrics registry: named counters, gauges and fixed-bucket
    histograms with O(1) record paths, an immutable {!snapshot}, and
    Prometheus-text / JSON renderers.

    Instruments hold direct references after a one-time name lookup
    ([counter]/[gauge]/[histogram] are get-or-create), so hot paths pay
    one hash lookup at installation and a plain mutation per record.

    The registry is domain-safe: counters are atomics, histograms update
    under a per-histogram mutex, and get-or-create / {!snapshot} lock the
    registry — helper compile domains record concurrently with the main
    thread. Gauges are single-word stores (a racing [set] is
    last-write-wins). *)

type counter
type gauge
type histogram

type t

val create : unit -> t

(** Get-or-create by name. Re-registering an existing histogram ignores
    the new [bounds]. [bounds] must be strictly increasing upper bounds
    (an implicit +∞ bucket is always appended); defaults to
    {!default_latency_bounds}. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : ?bounds:float array -> t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

(** [quantile h q] estimates the q-quantile (q ∈ [0,1]) by linear
    interpolation inside the bucket containing the rank; clamped to the
    observed [min, max]. 0 when the histogram is empty. *)
val quantile : histogram -> float -> float

(** Latency buckets in seconds: 1µs … 10s on a 1-2-5 grid. *)
val default_latency_bounds : float array

(** Finer buckets for queue waits / install latencies: 100ns … 1s. *)
val queue_latency_bounds : float array

(** Count-valued buckets for IR-size deltas: 0, then 1 … 5000 on a
    1-2-5 grid. *)
val size_bounds : float array

(** {2 Snapshots and rendering} *)

type histogram_view = {
  hv_name : string;
  hv_count : int;
  hv_sum : float;
  hv_min : float;  (** 0 when empty *)
  hv_max : float;
  hv_buckets : (float * int) list;
      (** (upper bound, count) per bucket; the last bound is [infinity] *)
  hv_p50 : float;
  hv_p90 : float;
  hv_p99 : float;
}

type view = {
  v_counters : (string * int) list;  (** sorted by name *)
  v_gauges : (string * float) list;
  v_histograms : histogram_view list;
}

val snapshot : t -> view

val find_counter : view -> string -> int option
val find_histogram : view -> string -> histogram_view option

(** Prometheus text exposition: metric names are sanitized
    ([.] and other non-identifier characters become [_]); histograms
    render cumulative [_bucket{le="…"}] series plus [_sum]/[_count]. *)
val render_prometheus : view -> string

(** Escape a string for use as a Prometheus label {e value}: backslash,
    double quote and newline become backslash-escaped sequences. Metric
    and label {e names} take {!render_prometheus}'s sanitization
    instead. *)
val escape_label_value : string -> string

val view_to_json : view -> Jsonx.t
