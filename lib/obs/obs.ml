type t = {
  m : Metrics.t;
  tr : Tracer.t;
  au : Audit.t;
  ir : Irdiff.t option;
}

let create ?capacity ?audit_capacity ?explain_capacity ?clock () =
  {
    m = Metrics.create ();
    tr = Tracer.create ?capacity ?clock ();
    au = Audit.create ?capacity:audit_capacity ?clock ();
    ir =
      (match explain_capacity with
      | Some k -> Some (Irdiff.create ~capacity:k ())
      | None -> None);
  }

let metrics t = t.m
let tracer t = t.tr
let audit t = t.au
let irdiff t = t.ir
let set_trace_file t path = Tracer.set_file_sink t.tr path
let set_audit_file t ?max_bytes path = Audit.set_file_sink t.au ?max_bytes path

let close = function
  | None -> ()
  | Some t ->
    Tracer.close t.tr;
    Audit.close t.au

let now = function None -> 0.0 | Some t -> Tracer.now t.tr

let alloc_id = function None -> None | Some t -> Some (Tracer.alloc_id t.tr)

let current_span = function
  | None -> None
  | Some t -> Tracer.current_span t.tr

let span obs ?fields ?fields_of ?parent name f =
  match obs with
  | None -> f ()
  | Some t ->
    Tracer.with_span t.tr ?fields ?fields_of ?parent
      ~on_close:(fun dur -> Metrics.observe (Metrics.histogram t.m (name ^ ".seconds")) dur)
      name f

let time obs name f =
  match obs with
  | None -> f ()
  | Some t ->
    let t0 = Tracer.now t.tr in
    let finish () =
      Metrics.observe (Metrics.histogram t.m name) (Float.max 0.0 (Tracer.now t.tr -. t0))
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let event obs ?fields ?id ?parent name =
  match obs with
  | None -> ()
  | Some t -> Tracer.event t.tr ?fields ?id ?parent name

let record_span obs ?fields ?parent ~ts ~dur name =
  match obs with
  | None -> ()
  | Some t ->
    ignore (Tracer.record t.tr ~ts ?parent ~kind:Tracer.Span ~dur ?fields name)

let incr obs name =
  match obs with
  | None -> ()
  | Some t -> Metrics.incr (Metrics.counter t.m name)

let add obs name n =
  match obs with
  | None -> ()
  | Some t -> Metrics.add (Metrics.counter t.m name) n

let set_gauge obs name v =
  match obs with
  | None -> ()
  | Some t -> Metrics.set (Metrics.gauge t.m name) v

let observe obs ?bounds name v =
  match obs with
  | None -> ()
  | Some t -> Metrics.observe (Metrics.histogram ?bounds t.m name) v

let view = function
  | None -> Metrics.snapshot (Metrics.create ())
  | Some t -> Metrics.snapshot t.m
