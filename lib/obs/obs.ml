type t = {
  m : Metrics.t;
  tr : Tracer.t;
}

let create ?capacity ?clock () =
  { m = Metrics.create (); tr = Tracer.create ?capacity ?clock () }

let metrics t = t.m
let tracer t = t.tr
let set_trace_file t path = Tracer.set_file_sink t.tr path

let close = function
  | None -> ()
  | Some t -> Tracer.close t.tr

let span obs ?fields ?fields_of name f =
  match obs with
  | None -> f ()
  | Some t ->
    Tracer.with_span t.tr ?fields ?fields_of
      ~on_close:(fun dur -> Metrics.observe (Metrics.histogram t.m (name ^ ".seconds")) dur)
      name f

let time obs name f =
  match obs with
  | None -> f ()
  | Some t ->
    let t0 = Tracer.now t.tr in
    let finish () =
      Metrics.observe (Metrics.histogram t.m name) (Float.max 0.0 (Tracer.now t.tr -. t0))
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let event obs ?fields name =
  match obs with
  | None -> ()
  | Some t -> Tracer.event t.tr ?fields name

let incr obs name =
  match obs with
  | None -> ()
  | Some t -> Metrics.incr (Metrics.counter t.m name)

let add obs name n =
  match obs with
  | None -> ()
  | Some t -> Metrics.add (Metrics.counter t.m name) n

let set_gauge obs name v =
  match obs with
  | None -> ()
  | Some t -> Metrics.set (Metrics.gauge t.m name) v

let observe obs name v =
  match obs with
  | None -> ()
  | Some t -> Metrics.observe (Metrics.histogram t.m name) v

let view = function
  | None -> Metrics.snapshot (Metrics.create ())
  | Some t -> Metrics.snapshot t.m
