(** The observability handle threaded through the engine: a
    {!Metrics.t} registry, a {!Tracer.t} and an {!Audit.t} decision
    trail, packaged so instrumented code takes an [Obs.t option] and pays
    nothing when it is [None] — every recording entry point below matches
    on the option first and the [None] arm is a no-op (for [span]/[time],
    a direct tail call of the body). *)

type t

(** [capacity] bounds the trace ring, [audit_capacity] the audit ring
    (defaults 4096 / 1024). [explain_capacity] — when given — enables
    explain capture: the analyzer summarizes each compile's per-pass IR
    changes into an {!Irdiff.t} ring of that many compile diffs (omit it
    and capture costs nothing, like every other disabled instrument).
    The components share [clock], so trace and audit timestamps are
    directly comparable. *)
val create :
  ?capacity:int ->
  ?audit_capacity:int ->
  ?explain_capacity:int ->
  ?clock:(unit -> float) ->
  unit ->
  t

val metrics : t -> Metrics.t
val tracer : t -> Tracer.t
val audit : t -> Audit.t

(** The IR-diff ring, present iff [explain_capacity] was given. *)
val irdiff : t -> Irdiff.t option

(** Mirror all subsequent trace events to [path] as JSON lines. *)
val set_trace_file : t -> string -> unit

(** Mirror all subsequent audit records to [path] as JSON lines;
    [max_bytes] enables size-based rotation (see
    {!Audit.set_file_sink}). *)
val set_audit_file : t -> ?max_bytes:int -> string -> unit

(** Flush and close the trace and audit file sinks, if any. [None] is a
    no-op. *)
val close : t option -> unit

(** Tracer-relative seconds (0 when disabled) — for durations measured
    across domains and recorded later (queue waits, install latency). *)
val now : t option -> float

(** Fresh process-unique trace-event id, or [None] when disabled: the
    cross-domain anchor (record on one domain with [event ?id], parent
    under it from another with [span ?parent]). *)
val alloc_id : t option -> int option

(** Innermost open span id on the calling domain ([None] when disabled or
    no span is open) — captured at request-submit time so the service
    client can propagate it as the remote parent. *)
val current_span : t option -> int option

(** [span obs name f] — timed span around [f]: records a trace event and
    observes the duration in histogram ["<name>.seconds"]. The span
    parents to the calling domain's innermost open span unless [parent]
    overrides it. *)
val span :
  t option ->
  ?fields:(string * Jsonx.t) list ->
  ?fields_of:('a -> (string * Jsonx.t) list) ->
  ?parent:int ->
  string ->
  (unit -> 'a) ->
  'a

(** [time obs name f] — histogram-only timing (no trace event): for hot
    call sites where one event per call would flood the ring. *)
val time : t option -> string -> (unit -> 'a) -> 'a

(** Point event into the trace; [id]/[parent] as in {!Tracer.event}. *)
val event :
  t option ->
  ?fields:(string * Jsonx.t) list ->
  ?id:int ->
  ?parent:int ->
  string ->
  unit

(** Synthesize a span measured elsewhere: recorded at start time [ts]
    (tracer-relative, from {!now}) with duration [dur], without touching
    the calling domain's span stack. No histogram is implied — pair with
    {!observe}. *)
val record_span :
  t option ->
  ?fields:(string * Jsonx.t) list ->
  ?parent:int ->
  ts:float ->
  dur:float ->
  string ->
  unit

val incr : t option -> string -> unit
val add : t option -> string -> int -> unit
val set_gauge : t option -> string -> float -> unit

(** Observe into histogram [name]; [bounds] only applies on first
    creation (see {!Metrics.histogram}). *)
val observe : t option -> ?bounds:float array -> string -> float -> unit

(** Snapshot of the metrics registry ([None] → empty view). *)
val view : t option -> Metrics.view
