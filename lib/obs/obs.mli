(** The observability handle threaded through the engine: a
    {!Metrics.t} registry plus a {!Tracer.t}, packaged so instrumented
    code takes an [Obs.t option] and pays nothing when it is [None] —
    every recording entry point below matches on the option first and the
    [None] arm is a no-op (for [span]/[time], a direct tail call of the
    body). *)

type t

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t

val metrics : t -> Metrics.t
val tracer : t -> Tracer.t

(** Mirror all subsequent trace events to [path] as JSON lines. *)
val set_trace_file : t -> string -> unit

(** Flush and close the trace file sink, if any. [None] is a no-op. *)
val close : t option -> unit

(** [span obs name f] — timed span around [f]: records a trace event and
    observes the duration in histogram ["<name>.seconds"]. *)
val span :
  t option ->
  ?fields:(string * Jsonx.t) list ->
  ?fields_of:('a -> (string * Jsonx.t) list) ->
  string ->
  (unit -> 'a) ->
  'a

(** [time obs name f] — histogram-only timing (no trace event): for hot
    call sites where one event per call would flood the ring. *)
val time : t option -> string -> (unit -> 'a) -> 'a

(** Point event into the trace. *)
val event : t option -> ?fields:(string * Jsonx.t) list -> string -> unit

val incr : t option -> string -> unit
val add : t option -> string -> int -> unit
val set_gauge : t option -> string -> float -> unit
val observe : t option -> string -> float -> unit

(** Snapshot of the metrics registry ([None] → empty view). *)
val view : t option -> Metrics.view
