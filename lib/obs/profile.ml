(* The sampling profiler's OCaml half: naming, aggregation, rendering.
   The sampling itself lives in profile_stubs.c — a SIGPROF handler that
   buckets ticks into a fixed code-page table (native frames) and a
   per-thread tag counter array (VM dispatch, pass pipeline, comparator,
   host calls). This module is process-global state, like the C side:
   there is one timer per process, so one profiler. *)

external c_available : unit -> bool = "jb_prof_available"
external c_start : int -> bool = "jb_prof_start"
external c_stop : unit -> unit = "jb_prof_stop"
external c_set_tag : int -> int = "jb_prof_set_tag" [@@noalloc]
external c_register_page : nativeint -> int -> int = "jb_prof_register_page"
external c_drop_page : int -> int = "jb_prof_drop_page"
external c_page_hits : int -> int = "jb_prof_page_hits"
external c_tag_count : int -> int = "jb_prof_tag_count"
external c_total : unit -> int = "jb_prof_total"
external c_reset : unit -> unit = "jb_prof_reset"

let max_tags = 64

let available = c_available

(* [enabled] gates the hot tagging path: with profiling off, [with_tag]
   is one atomic load and a tail call. *)
let enabled = Atomic.make false
let running () = Atomic.get enabled

let mu = Mutex.create ()

(* tag id ↔ hierarchical name (";"-separated, e.g. "vm;dispatch");
   id 0 is reserved for unattributed ticks *)
let tag_ids : (string, int) Hashtbl.t = Hashtbl.create 16
let tag_names = Array.make max_tags ""
let next_tag = ref 1

(* live page slot → frame name, plus hits folded out of dropped slots *)
let pages : (int, string) Hashtbl.t = Hashtbl.create 64
let retired : (string, int) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Intern a tag name; done once per call site (module init), not per
   use. Past 63 distinct names, falls back to 0 = unattributed. *)
let tag name =
  locked (fun () ->
      match Hashtbl.find_opt tag_ids name with
      | Some id -> id
      | None ->
        if !next_tag >= max_tags then 0
        else begin
          let id = !next_tag in
          incr next_tag;
          Hashtbl.replace tag_ids name id;
          tag_names.(id) <- name;
          id
        end)

let with_tag id f =
  if not (Atomic.get enabled) then f ()
  else begin
    let prev = c_set_tag id in
    match f () with
    | v ->
      ignore (c_set_tag prev);
      v
    | exception e ->
      ignore (c_set_tag prev);
      raise e
  end

let start ?(hz = 997) () =
  if Atomic.get enabled then true
  else if c_start (max 1 hz) then begin
    Atomic.set enabled true;
    true
  end
  else false

let stop () =
  if Atomic.get enabled then begin
    Atomic.set enabled false;
    c_stop ()
  end

let register_page ~addr ~size name =
  let slot = c_register_page addr size in
  if slot >= 0 then locked (fun () -> Hashtbl.replace pages slot name);
  slot

let drop_page slot =
  if slot >= 0 then begin
    let hits = c_drop_page slot in
    locked (fun () ->
        (match Hashtbl.find_opt pages slot with
        | Some name ->
          Hashtbl.remove pages slot;
          if hits > 0 then
            Hashtbl.replace retired name
              (hits + Option.value ~default:0 (Hashtbl.find_opt retired name))
        | None -> ()))
  end

let total_samples = c_total

(* Every named bucket with a non-zero count, heaviest first, plus an
   "other" line for unattributed ticks (tag 0 and table-overflow). *)
let report () =
  locked (fun () ->
      let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let bump name n =
        if n > 0 then
          Hashtbl.replace tbl name
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl name))
      in
      Hashtbl.iter (fun slot name -> bump name (c_page_hits slot)) pages;
      Hashtbl.iter (fun name n -> bump name n) retired;
      for id = 1 to !next_tag - 1 do
        bump tag_names.(id) (c_tag_count id)
      done;
      let named = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      let attributed = List.fold_left (fun a (_, n) -> a + n) 0 named in
      let other = c_total () - attributed in
      let all = if other > 0 then ("other", other) :: named else named in
      List.sort (fun (_, a) (_, b) -> compare b a) all)

let attributed_fraction () =
  let total = c_total () in
  if total = 0 then 1.0
  else
    let other =
      List.fold_left
        (fun a (name, n) -> if String.equal name "other" then a + n else a)
        0 (report ())
    in
    float_of_int (total - other) /. float_of_int total

(* Collapsed-stack output, one "jsrun;frame;subframe count" line per
   bucket — feed straight to flamegraph.pl / speedscope. *)
let collapsed () =
  String.concat ""
    (List.map
       (fun (name, n) -> Printf.sprintf "jsrun;%s %d\n" name n)
       (report ()))

let reset () =
  c_reset ();
  locked (fun () -> Hashtbl.reset retired)
