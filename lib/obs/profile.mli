(** The sampling profiler: an ITIMER_PROF/SIGPROF sampler (C stub) with
    process-global attribution state.

    Each tick is bucketed by the interrupted program counter against a
    fixed atomic table of registered native code pages — a PC inside an
    installed page attributes to that native function, no matter what
    the thread was tagged — falling back to the interrupted thread's
    current {e tag}, a small integer set around the VM dispatch loop,
    pass execution, the comparator, and the native call gate. Ticks
    matching neither count as ["other"].

    Disabled profiling costs zero: no signal handler is installed and
    {!with_tag} is one atomic load. There is one timer per process, so
    one process-global profiler. Sampling needs Linux/x86-64
    ({!available}); elsewhere {!start} returns [false] and everything
    else degrades to no-ops. *)

val available : unit -> bool

(** Install the SIGPROF handler and arm the CPU-time timer at [hz]
    samples/second (default 997 — off round frequencies to dodge
    lockstep with periodic work). [false] when sampling is unsupported
    or the timer could not be armed. Idempotent while running. *)
val start : ?hz:int -> unit -> bool

(** Disarm the timer and ignore stragglers. Counters survive for
    {!report}. *)
val stop : unit -> unit

val running : unit -> bool

(** {1 Attribution} *)

(** Intern a hierarchical frame name (";"-separated, e.g.
    ["vm;dispatch"]) into a tag id. Call once per site, at module init —
    at most 63 distinct names (beyond that, ticks count as ["other"]). *)
val tag : string -> int

(** [with_tag id f] runs [f] with the calling thread's profiler tag set
    to [id], restoring the previous tag after (tags nest; innermost
    wins). Free when profiling is off. *)
val with_tag : int -> (unit -> 'a) -> 'a

(** [register_page ~addr ~size name] enters an installed native code
    page into the sampler's page table; ticks landing in
    [addr, addr+size) attribute to [name]. Returns the slot to pass to
    {!drop_page} (-1 when the table is full — harmless, ticks fall back
    to tags). *)
val register_page : addr:nativeint -> size:int -> string -> int

(** Free the slot when its page is unmapped; accumulated hits are folded
    into a retired-by-name table so the frame survives in {!report}. *)
val drop_page : int -> unit

(** {1 Results} *)

val total_samples : unit -> int

(** (frame name, ticks) for every non-zero bucket, heaviest first,
    including ["other"] for unattributed ticks. *)
val report : unit -> (string * int) list

(** Fraction of ticks attributed to a named frame (1.0 when no samples
    were taken). *)
val attributed_fraction : unit -> float

(** Collapsed-stack text (["jsrun;frame;subframe count"] lines) — ready
    for flamegraph.pl / speedscope. *)
val collapsed : unit -> string

(** Zero all counters (bench A/B); registered pages and tag interning
    survive. *)
val reset : unit -> unit
