/* C side of the sampling profiler: an ITIMER_PROF/SIGPROF sampler that
 * buckets each tick without touching the OCaml runtime.
 *
 * The handler is async-signal-safe by construction — it only loads and
 * increments C atomics:
 *
 *   - a fixed table of executable code pages (start/end/hits), filled by
 *     the native tier as it installs code and consulted first: if the
 *     interrupted PC lies inside a registered page, the tick belongs to
 *     that native function regardless of any tag;
 *   - otherwise a per-thread tag (a small integer set around interpreter
 *     dispatch, pass execution, the comparator, and the native call
 *     gate) picks one of a fixed array of tag counters; tag 0 counts
 *     unattributed ticks.
 *
 * Nothing here is installed until jb_prof_start runs: with profiling
 * off there is no signal handler and no timer, so the disabled cost is
 * exactly zero.  Only Linux/x86-64 can read the interrupted PC from the
 * ucontext; elsewhere jb_prof_available reports false and start fails.
 */

#ifndef _GNU_SOURCE
#define _GNU_SOURCE /* REG_RIP in <ucontext.h> */
#endif

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(__linux__) && defined(__x86_64__)
#define JB_PROF 1
#include <signal.h>
#include <stdatomic.h>
#include <stdint.h>
#include <string.h>
#include <sys/time.h>
#include <ucontext.h>
#endif

#ifdef JB_PROF

#define JB_PROF_PAGES 1024
#define JB_PROF_TAGS 64

/* start: 0 = free, 1 = being claimed, otherwise the page base.  end is
 * written before the real start is published (release), so the handler
 * (acquire on start) never sees a half-initialized slot. */
typedef struct {
  _Atomic uintptr_t start;
  _Atomic uintptr_t end;
  _Atomic long hits;
} jb_prof_page;

static jb_prof_page jb_pages[JB_PROF_PAGES];
static _Atomic long jb_tag_hits[JB_PROF_TAGS];
static _Atomic long jb_total;
static __thread int jb_tag; /* 0 = untagged */
static volatile sig_atomic_t jb_running;

static void jb_prof_handler(int sig, siginfo_t *info, void *uctx)
{
  (void)sig;
  (void)info;
  uintptr_t rip =
      (uintptr_t)((ucontext_t *)uctx)->uc_mcontext.gregs[REG_RIP];
  atomic_fetch_add_explicit(&jb_total, 1, memory_order_relaxed);
  for (int i = 0; i < JB_PROF_PAGES; i++) {
    uintptr_t s = atomic_load_explicit(&jb_pages[i].start, memory_order_acquire);
    if (s > 1 && rip >= s &&
        rip < atomic_load_explicit(&jb_pages[i].end, memory_order_relaxed)) {
      atomic_fetch_add_explicit(&jb_pages[i].hits, 1, memory_order_relaxed);
      return;
    }
  }
  int t = jb_tag;
  if (t < 0 || t >= JB_PROF_TAGS) t = 0;
  atomic_fetch_add_explicit(&jb_tag_hits[t], 1, memory_order_relaxed);
}

#endif

CAMLprim value jb_prof_available(value unit)
{
  (void)unit;
#ifdef JB_PROF
  return Val_true;
#else
  return Val_false;
#endif
}

/* Install the handler and arm ITIMER_PROF at [hz] samples/second of
 * consumed CPU time.  Returns false where sampling is unsupported. */
CAMLprim value jb_prof_start(value hz)
{
#ifdef JB_PROF
  struct sigaction sa;
  memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = jb_prof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, NULL) != 0) return Val_false;
  long us = 1000000L / Long_val(hz);
  if (us < 1) us = 1;
  struct itimerval it;
  it.it_interval.tv_sec = us / 1000000L;
  it.it_interval.tv_usec = us % 1000000L;
  it.it_value = it.it_interval;
  if (setitimer(ITIMER_PROF, &it, NULL) != 0) {
    signal(SIGPROF, SIG_IGN);
    return Val_false;
  }
  jb_running = 1;
  return Val_true;
#else
  (void)hz;
  return Val_false;
#endif
}

/* Disarm the timer, then ignore any straggler SIGPROF already queued. */
CAMLprim value jb_prof_stop(value unit)
{
  (void)unit;
#ifdef JB_PROF
  if (jb_running) {
    struct itimerval it;
    memset(&it, 0, sizeof it);
    setitimer(ITIMER_PROF, &it, NULL);
    signal(SIGPROF, SIG_IGN);
    jb_running = 0;
  }
#endif
  return Val_unit;
}

/* Set the calling thread's tag; returns the previous one so callers can
 * restore it on scope exit (tags nest). */
CAMLprim value jb_prof_set_tag(value tag)
{
#ifdef JB_PROF
  int prev = jb_tag;
  jb_tag = Int_val(tag);
  return Val_int(prev);
#else
  (void)tag;
  return Val_int(0);
#endif
}

/* Claim a free page slot for [start, start+size).  Returns the slot
 * index, or -1 when the table is full (the tick then falls back to the
 * thread tag).  Safe to race from several compile domains: slots are
 * claimed by CAS. */
CAMLprim value jb_prof_register_page(value start, value size)
{
#ifdef JB_PROF
  uintptr_t s = (uintptr_t)Nativeint_val(start);
  uintptr_t e = s + (uintptr_t)Long_val(size);
  if (s <= 1) return Val_int(-1);
  for (int i = 0; i < JB_PROF_PAGES; i++) {
    uintptr_t expect = 0;
    if (atomic_compare_exchange_strong(&jb_pages[i].start, &expect,
                                       (uintptr_t)1)) {
      atomic_store_explicit(&jb_pages[i].end, e, memory_order_relaxed);
      atomic_store_explicit(&jb_pages[i].hits, 0, memory_order_relaxed);
      atomic_store_explicit(&jb_pages[i].start, s, memory_order_release);
      return Val_int(i);
    }
  }
  return Val_int(-1);
#else
  (void)start;
  (void)size;
  return Val_int(-1);
#endif
}

/* Free a slot and return its accumulated hits (the OCaml side folds
 * them into a retired-by-name table).  A tick racing the drop may land
 * in the freed slot; at most one sample of slop per drop. */
CAMLprim value jb_prof_drop_page(value slot)
{
#ifdef JB_PROF
  int i = Int_val(slot);
  if (i < 0 || i >= JB_PROF_PAGES) return Val_long(0);
  atomic_store_explicit(&jb_pages[i].start, 0, memory_order_release);
  long h = atomic_exchange(&jb_pages[i].hits, 0);
  return Val_long(h);
#else
  (void)slot;
  return Val_long(0);
#endif
}

CAMLprim value jb_prof_page_hits(value slot)
{
#ifdef JB_PROF
  int i = Int_val(slot);
  if (i < 0 || i >= JB_PROF_PAGES) return Val_long(0);
  return Val_long(atomic_load_explicit(&jb_pages[i].hits, memory_order_relaxed));
#else
  (void)slot;
  return Val_long(0);
#endif
}

CAMLprim value jb_prof_tag_count(value tag)
{
#ifdef JB_PROF
  int t = Int_val(tag);
  if (t < 0 || t >= JB_PROF_TAGS) return Val_long(0);
  return Val_long(atomic_load_explicit(&jb_tag_hits[t], memory_order_relaxed));
#else
  (void)tag;
  return Val_long(0);
#endif
}

CAMLprim value jb_prof_total(value unit)
{
  (void)unit;
#ifdef JB_PROF
  return Val_long(atomic_load_explicit(&jb_total, memory_order_relaxed));
#else
  return Val_long(0);
#endif
}

/* Zero every counter (bench A/B runs); registered pages stay. */
CAMLprim value jb_prof_reset(value unit)
{
  (void)unit;
#ifdef JB_PROF
  atomic_store(&jb_total, 0);
  for (int i = 0; i < JB_PROF_TAGS; i++) atomic_store(&jb_tag_hits[i], 0);
  for (int i = 0; i < JB_PROF_PAGES; i++)
    atomic_store(&jb_pages[i].hits, 0);
#endif
  return Val_unit;
}
