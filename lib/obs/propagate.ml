(* W3C-traceparent-style context propagation.

   The wire format is the traceparent header's:

     00-<32 lowercase hex trace-id>-<16 lowercase hex parent-id>-01

   The trace id names the originating engine process (one per client
   connection, minted at connect time); the parent id is the span id of
   the client-side span that issued the request, encoded from the
   tracer's int ids. jitbulld decodes the header and records its
   server-side verdict span with [parent] set to the remote id, so
   merging the two processes' trace files yields one connected chain.

   Decoding is strict: anything that is not exactly the shape above is
   an error (the service turns it into a 400). Per W3C, an all-zero
   trace id or parent id is also invalid. *)

type context = {
  trace_id : string;  (* 32 lowercase hex chars, not all zero *)
  parent_id : int;    (* tracer span id of the remote parent, > 0 *)
}

let header_name = "traceparent"

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false
let all_hex s = String.for_all is_hex s
let all_zero s = String.for_all (Char.equal '0') s

let valid_trace_id s = String.length s = 32 && all_hex s && not (all_zero s)

let encode ctx = Printf.sprintf "00-%s-%016x-01" ctx.trace_id ctx.parent_id

let decode s =
  (* 2 (version) + 1 + 32 (trace id) + 1 + 16 (parent id) + 1 + 2 (flags) *)
  if String.length s <> 55 then Error "traceparent: bad length"
  else if String.sub s 0 3 <> "00-" then Error "traceparent: unsupported version"
  else if s.[35] <> '-' || s.[52] <> '-' then Error "traceparent: bad delimiters"
  else
    let trace_id = String.sub s 3 32 in
    let parent_hex = String.sub s 36 16 in
    let flags = String.sub s 53 2 in
    if not (valid_trace_id trace_id) then Error "traceparent: bad trace id"
    else if not (all_hex parent_hex) || all_zero parent_hex then
      Error "traceparent: bad parent id"
    else if not (all_hex flags) then Error "traceparent: bad flags"
    else
      match int_of_string_opt ("0x" ^ parent_hex) with
      | Some parent_id when parent_id > 0 -> Ok { trace_id; parent_id }
      | _ ->
        (* ids above 2^62 don't fit OCaml's int; the tracer never mints
           them (pid-seeded ids stay below 2^56) *)
        Error "traceparent: parent id out of range"

(* Mint a fresh 32-hex trace id. MD5 of pid + wall clock + a process
   counter is exactly 32 lowercase hex chars and unique enough to tell
   fleet clients apart; this is an identifier, not a secret. *)
let counter = Atomic.make 0

let fresh_trace_id () =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d-%f-%d" (Unix.getpid ()) (Unix.gettimeofday ())
          (Atomic.fetch_and_add counter 1)))
