(** W3C-traceparent-style trace-context propagation across processes.

    The engine-side service client attaches an encoded context to every
    request; jitbulld decodes it and parents its server-side spans on
    the remote span id, so merging the two trace files reconstructs one
    end-to-end chain. *)

type context = {
  trace_id : string;  (** 32 lowercase hex chars, not all zero *)
  parent_id : int;    (** tracer span id of the remote parent, > 0 *)
}

val header_name : string
(** ["traceparent"] *)

val encode : context -> string
(** [00-<trace_id>-<%016x parent_id>-01]. *)

val decode : string -> (context, string) result
(** Strict inverse of {!encode}: exact length, version [00], lowercase
    hex, non-zero ids. Hostile values give [Error reason]. *)

val valid_trace_id : string -> bool

val fresh_trace_id : unit -> string
(** Mint a 32-hex trace id unique across fleet processes. *)
