let prefix = "pass."
let suffix = ".seconds"

let pass_of_histogram name =
  let lp = String.length prefix and ls = String.length suffix in
  let n = String.length name in
  if n > lp + ls
     && String.equal (String.sub name 0 lp) prefix
     && String.equal (String.sub name (n - ls) ls) suffix
  then Some (String.sub name lp (n - lp - ls))
  else None

let us v = Printf.sprintf "%.1f" (v *. 1e6)

let pass_profile (view : Metrics.view) =
  let headers = [ "pass"; "runs"; "total ms"; "mean us"; "p50 us"; "p90 us"; "delta size" ] in
  let entries =
    List.filter_map
      (fun (hv : Metrics.histogram_view) ->
        match pass_of_histogram hv.Metrics.hv_name with
        | Some pass -> Some (pass, hv)
        | None -> None)
      view.Metrics.v_histograms
    |> List.sort (fun (_, a) (_, b) ->
           compare b.Metrics.hv_sum a.Metrics.hv_sum)
  in
  let rows =
    List.map
      (fun (pass, (hv : Metrics.histogram_view)) ->
        let delta =
          match Metrics.find_counter view (prefix ^ pass ^ ".delta_size") with
          | Some d -> Printf.sprintf "%+d" d
          | None -> ""
        in
        let mean = if hv.hv_count = 0 then 0.0 else hv.hv_sum /. float_of_int hv.hv_count in
        [
          pass;
          string_of_int hv.hv_count;
          Printf.sprintf "%.2f" (hv.hv_sum *. 1000.0);
          us mean;
          us hv.hv_p50;
          us hv.hv_p90;
          delta;
        ])
      entries
  in
  (headers, rows)

let histogram_table ?(unit_scale = 1e-6) (view : Metrics.view) =
  let unit_name = if unit_scale = 1e-6 then "us" else if unit_scale = 1e-3 then "ms" else "" in
  let fmt v = Printf.sprintf "%.1f" (v /. unit_scale) in
  let headers =
    [ "histogram"; "count"; "total " ^ unit_name; "mean " ^ unit_name; "p50"; "p90"; "p99";
      "max" ]
  in
  let rows =
    List.map
      (fun (hv : Metrics.histogram_view) ->
        let mean = if hv.Metrics.hv_count = 0 then 0.0 else hv.hv_sum /. float_of_int hv.hv_count in
        [
          hv.hv_name;
          string_of_int hv.hv_count;
          fmt hv.hv_sum;
          fmt mean;
          fmt hv.hv_p50;
          fmt hv.hv_p90;
          fmt hv.hv_p99;
          fmt hv.hv_max;
        ])
      view.Metrics.v_histograms
  in
  (headers, rows)
