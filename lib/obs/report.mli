(** Turns a metrics snapshot into ready-to-print tables (headers + rows
    for {!Jitbull_util.Text_table}-style renderers; this module returns
    plain strings so [jitbull_obs] stays dependency-free). *)

(** Per-pass compile-time profile from the pipeline's
    ["pass.<name>.seconds"] histograms and ["pass.<name>.delta_size"]
    counters, sorted by total time, descending. Returns
    [(headers, rows)]; empty rows when nothing was instrumented. *)
val pass_profile : Metrics.view -> string list * string list list

(** One row per histogram: count, total, mean, p50/p90/p99, max.
    [unit_scale] divides the raw (seconds) values for display — e.g.
    [1e-6] renders microseconds (the default). *)
val histogram_table : ?unit_scale:float -> Metrics.view -> string list * string list list
