type kind =
  | Span
  | Point

type event = {
  seq : int;
  ts : float;
  kind : kind;
  name : string;
  dur : float;
  depth : int;
  fields : (string * Jsonx.t) list;
}

type t = {
  capacity : int;
  ring : event option array;
  mutable head : int;  (* next write slot *)
  mutable total : int;  (* events ever recorded; doubles as next seq *)
  mutable cur_depth : int;
  mutable chan : out_channel option;
  clock : unit -> float;
  start : float;
}

let create ?(capacity = 4096) ?(clock = Unix.gettimeofday) () =
  let capacity = max 1 capacity in
  {
    capacity;
    ring = Array.make capacity None;
    head = 0;
    total = 0;
    cur_depth = 0;
    chan = None;
    clock;
    start = clock ();
  }

let now t = t.clock () -. t.start
let depth t = t.cur_depth

let set_file_sink t path =
  (match t.chan with Some oc -> close_out oc | None -> ());
  t.chan <- Some (open_out path)

let kind_to_string = function Span -> "span" | Point -> "event"

let kind_of_string = function
  | "span" -> Span
  | "event" -> Point
  | s -> raise (Jsonx.Parse_error ("unknown event kind " ^ s))

let event_to_json e =
  Jsonx.Assoc
    [
      ("seq", Jsonx.Int e.seq);
      ("ts", Jsonx.Float e.ts);
      ("kind", Jsonx.String (kind_to_string e.kind));
      ("name", Jsonx.String e.name);
      ("dur", Jsonx.Float e.dur);
      ("depth", Jsonx.Int e.depth);
      ("fields", Jsonx.Assoc e.fields);
    ]

let event_of_json j =
  let fields =
    match Jsonx.member "fields" j with
    | Jsonx.Assoc fs -> fs
    | Jsonx.Null -> []
    | _ -> raise (Jsonx.Parse_error "event fields must be an object")
  in
  {
    seq = Jsonx.to_int (Jsonx.member "seq" j);
    ts = Jsonx.to_float (Jsonx.member "ts" j);
    kind = kind_of_string (Jsonx.to_str (Jsonx.member "kind" j));
    name = Jsonx.to_str (Jsonx.member "name" j);
    dur = Jsonx.to_float (Jsonx.member "dur" j);
    depth = Jsonx.to_int (Jsonx.member "depth" j);
    fields;
  }

let record t ?ts ?depth ?(kind = Point) ?(dur = 0.0) ?(fields = []) name =
  let ts = match ts with Some x -> x | None -> now t in
  let depth = match depth with Some d -> d | None -> t.cur_depth in
  let e = { seq = t.total; ts; kind; name; dur; depth; fields } in
  t.ring.(t.head) <- Some e;
  t.head <- (t.head + 1) mod t.capacity;
  t.total <- t.total + 1;
  match t.chan with
  | Some oc ->
    output_string oc (Jsonx.to_string (event_to_json e));
    output_char oc '\n';
    flush oc
  | None -> ()

let event t ?fields name = record t ?fields name

let with_span t ?(fields = []) ?fields_of ?on_close name f =
  let t0 = now t in
  t.cur_depth <- t.cur_depth + 1;
  let span_depth = t.cur_depth in
  let finish extra =
    let dur = Float.max 0.0 (now t -. t0) in
    t.cur_depth <- span_depth - 1;
    record t ~ts:t0 ~depth:span_depth ~kind:Span ~dur ~fields:(fields @ extra) name;
    match on_close with Some g -> g dur | None -> ()
  in
  match f () with
  | v ->
    let extra = match fields_of with Some g -> g v | None -> [] in
    finish extra;
    v
  | exception e ->
    finish [ ("error", Jsonx.String (Printexc.to_string e)) ];
    raise e

let events t =
  let n = min t.total t.capacity in
  List.init n (fun i ->
      let idx = (t.head - n + i + t.capacity) mod t.capacity in
      match t.ring.(idx) with
      | Some e -> e
      | None -> assert false)

let total_recorded t = t.total

let close t =
  match t.chan with
  | Some oc ->
    close_out oc;
    t.chan <- None
  | None -> ()
