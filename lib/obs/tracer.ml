type kind =
  | Span
  | Point

type event = {
  seq : int;
  ts : float;
  id : int;
  parent : int option;
  kind : kind;
  name : string;
  dur : float;
  depth : int;
  fields : (string * Jsonx.t) list;
}

(* One mutex per tracer serializes ring writes and file-sink output;
   helper compile domains record spans concurrently with the main thread.

   Correlation state is split in two:
   - ids come from a process-wide atomic, so an id handed out by one
     tracer (or captured on the main thread and carried into a helper
     domain) can never collide with an id allocated anywhere else;
   - the open-span stack lives in domain-local storage, so nesting —
     and therefore default parents and depths — is exact per domain
     even when several domains record into one tracer concurrently.
     Cross-domain edges are explicit: the enqueuing side allocates an
     anchor id and the helper passes it as [?parent]. *)
type t = {
  capacity : int;
  ring : event option array;
  mutable head : int;  (* next write slot *)
  mutable total : int;  (* events ever recorded; doubles as next seq *)
  mutable chan : out_channel option;
  mu : Mutex.t;
  clock : unit -> float;
  start : float;
}

(* Seeded from the pid so span ids are unique across *processes* too:
   fleet trace files from an engine and a jitbulld can be merged without
   id collisions, and cross-process parent links (Propagate) stay
   unambiguous. 24 pid bits above a 32-bit counter keeps every id below
   2^56, so it round-trips through traceparent's 16-hex encoding and
   OCaml's int alike. *)
let next_id = Atomic.make (((Unix.getpid () land 0xFFFFFF) lsl 32) lor 1)

let alloc_id (_ : t) = Atomic.fetch_and_add next_id 1

(* Per-domain stack of open span ids, innermost first. *)
let context_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get context_key

let current_span (_ : t) =
  match !(stack ()) with [] -> None | id :: _ -> Some id

let create ?(capacity = 4096) ?(clock : (unit -> float) option) () =
  let clock = match clock with Some c -> c | None -> Clock.now in
  let capacity = max 1 capacity in
  {
    capacity;
    ring = Array.make capacity None;
    head = 0;
    total = 0;
    chan = None;
    mu = Mutex.create ();
    clock;
    start = clock ();
  }

let now t = t.clock () -. t.start
let depth (_ : t) = List.length !(stack ())

let set_file_sink t path =
  Mutex.lock t.mu;
  (match t.chan with Some oc -> close_out oc | None -> ());
  t.chan <- Some (open_out path);
  Mutex.unlock t.mu

let kind_to_string = function Span -> "span" | Point -> "event"

let kind_of_string = function
  | "span" -> Span
  | "event" -> Point
  | s -> raise (Jsonx.Parse_error ("unknown event kind " ^ s))

let event_to_json e =
  Jsonx.Assoc
    [
      ("seq", Jsonx.Int e.seq);
      ("ts", Jsonx.Float e.ts);
      ("id", Jsonx.Int e.id);
      ("parent", (match e.parent with Some p -> Jsonx.Int p | None -> Jsonx.Null));
      ("kind", Jsonx.String (kind_to_string e.kind));
      ("name", Jsonx.String e.name);
      ("dur", Jsonx.Float e.dur);
      ("depth", Jsonx.Int e.depth);
      ("fields", Jsonx.Assoc e.fields);
    ]

let event_of_json j =
  let fields =
    match Jsonx.member "fields" j with
    | Jsonx.Assoc fs -> fs
    | Jsonx.Null -> []
    | _ -> raise (Jsonx.Parse_error "event fields must be an object")
  in
  {
    seq = Jsonx.to_int (Jsonx.member "seq" j);
    ts = Jsonx.to_float (Jsonx.member "ts" j);
    (* pre-correlation traces carry neither field: id 0 is never allocated *)
    id = (match Jsonx.member "id" j with Jsonx.Null -> 0 | v -> Jsonx.to_int v);
    parent =
      (match Jsonx.member "parent" j with
      | Jsonx.Null -> None
      | v -> Some (Jsonx.to_int v));
    kind = kind_of_string (Jsonx.to_str (Jsonx.member "kind" j));
    name = Jsonx.to_str (Jsonx.member "name" j);
    dur = Jsonx.to_float (Jsonx.member "dur" j);
    depth = Jsonx.to_int (Jsonx.member "depth" j);
    fields;
  }

let record t ?ts ?id ?parent ?depth:d ?(kind = Point) ?(dur = 0.0) ?(fields = []) name =
  let ts = match ts with Some x -> x | None -> now t in
  let id = match id with Some i -> i | None -> alloc_id t in
  let parent = match parent with Some _ -> parent | None -> current_span t in
  let depth = match d with Some d -> d | None -> depth t in
  Mutex.lock t.mu;
  let e = { seq = t.total; ts; id; parent; kind; name; dur; depth; fields } in
  t.ring.(t.head) <- Some e;
  t.head <- (t.head + 1) mod t.capacity;
  t.total <- t.total + 1;
  let sink = t.chan in
  (match sink with
  | Some oc ->
    output_string oc (Jsonx.to_string (event_to_json e));
    output_char oc '\n';
    flush oc
  | None -> ());
  Mutex.unlock t.mu;
  id

let event t ?fields ?id ?parent name = ignore (record t ?fields ?id ?parent name)

let with_span t ?(fields = []) ?fields_of ?parent ?on_close name f =
  let t0 = now t in
  let id = alloc_id t in
  let parent = match parent with Some _ -> parent | None -> current_span t in
  let st = stack () in
  st := id :: !st;
  let span_depth = List.length !st in
  let finish extra =
    let dur = Float.max 0.0 (now t -. t0) in
    (match !st with
    | top :: rest when top = id -> st := rest
    | other ->
      (* unbalanced nesting (an exception tore through a sibling span):
         drop down to below our frame rather than corrupting the stack *)
      st := (match List.find_index (Int.equal id) other with
            | Some i -> List.filteri (fun j _ -> j > i) other
            | None -> other));
    ignore
      (record t ~ts:t0 ~id ?parent ~depth:span_depth ~kind:Span ~dur
         ~fields:(fields @ extra) name);
    match on_close with Some g -> g dur | None -> ()
  in
  match f () with
  | v ->
    let extra = match fields_of with Some g -> g v | None -> [] in
    finish extra;
    v
  | exception e ->
    finish [ ("error", Jsonx.String (Printexc.to_string e)) ];
    raise e

let events t =
  Mutex.lock t.mu;
  let n = min t.total t.capacity in
  let evs =
    List.init n (fun i ->
        let idx = (t.head - n + i + t.capacity) mod t.capacity in
        match t.ring.(idx) with
        | Some e -> e
        | None -> assert false)
  in
  Mutex.unlock t.mu;
  evs

let total_recorded t = t.total

let close t =
  Mutex.lock t.mu;
  (match t.chan with
  | Some oc ->
    close_out oc;
    t.chan <- None
  | None -> ());
  Mutex.unlock t.mu
