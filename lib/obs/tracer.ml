type kind =
  | Span
  | Point

type event = {
  seq : int;
  ts : float;
  kind : kind;
  name : string;
  dur : float;
  depth : int;
  fields : (string * Jsonx.t) list;
}

(* One mutex per tracer serializes ring writes and file-sink output;
   helper compile domains record spans concurrently with the main thread.
   [cur_depth] is a tracer-wide notion, so under concurrent recording the
   reported depth of overlapping spans is approximate — durations and
   ordering (seq) stay exact. *)
type t = {
  capacity : int;
  ring : event option array;
  mutable head : int;  (* next write slot *)
  mutable total : int;  (* events ever recorded; doubles as next seq *)
  mutable cur_depth : int;
  mutable chan : out_channel option;
  mu : Mutex.t;
  clock : unit -> float;
  start : float;
}

let create ?(capacity = 4096) ?(clock : (unit -> float) option) () =
  let clock = match clock with Some c -> c | None -> Clock.now in
  let capacity = max 1 capacity in
  {
    capacity;
    ring = Array.make capacity None;
    head = 0;
    total = 0;
    cur_depth = 0;
    chan = None;
    mu = Mutex.create ();
    clock;
    start = clock ();
  }

let now t = t.clock () -. t.start
let depth t = t.cur_depth

let set_file_sink t path =
  Mutex.lock t.mu;
  (match t.chan with Some oc -> close_out oc | None -> ());
  t.chan <- Some (open_out path);
  Mutex.unlock t.mu

let kind_to_string = function Span -> "span" | Point -> "event"

let kind_of_string = function
  | "span" -> Span
  | "event" -> Point
  | s -> raise (Jsonx.Parse_error ("unknown event kind " ^ s))

let event_to_json e =
  Jsonx.Assoc
    [
      ("seq", Jsonx.Int e.seq);
      ("ts", Jsonx.Float e.ts);
      ("kind", Jsonx.String (kind_to_string e.kind));
      ("name", Jsonx.String e.name);
      ("dur", Jsonx.Float e.dur);
      ("depth", Jsonx.Int e.depth);
      ("fields", Jsonx.Assoc e.fields);
    ]

let event_of_json j =
  let fields =
    match Jsonx.member "fields" j with
    | Jsonx.Assoc fs -> fs
    | Jsonx.Null -> []
    | _ -> raise (Jsonx.Parse_error "event fields must be an object")
  in
  {
    seq = Jsonx.to_int (Jsonx.member "seq" j);
    ts = Jsonx.to_float (Jsonx.member "ts" j);
    kind = kind_of_string (Jsonx.to_str (Jsonx.member "kind" j));
    name = Jsonx.to_str (Jsonx.member "name" j);
    dur = Jsonx.to_float (Jsonx.member "dur" j);
    depth = Jsonx.to_int (Jsonx.member "depth" j);
    fields;
  }

let record t ?ts ?depth ?(kind = Point) ?(dur = 0.0) ?(fields = []) name =
  let ts = match ts with Some x -> x | None -> now t in
  Mutex.lock t.mu;
  let depth = match depth with Some d -> d | None -> t.cur_depth in
  let e = { seq = t.total; ts; kind; name; dur; depth; fields } in
  t.ring.(t.head) <- Some e;
  t.head <- (t.head + 1) mod t.capacity;
  t.total <- t.total + 1;
  let sink = t.chan in
  (match sink with
  | Some oc ->
    output_string oc (Jsonx.to_string (event_to_json e));
    output_char oc '\n';
    flush oc
  | None -> ());
  Mutex.unlock t.mu

let event t ?fields name = record t ?fields name

let with_span t ?(fields = []) ?fields_of ?on_close name f =
  let t0 = now t in
  t.cur_depth <- t.cur_depth + 1;
  let span_depth = t.cur_depth in
  let finish extra =
    let dur = Float.max 0.0 (now t -. t0) in
    t.cur_depth <- span_depth - 1;
    record t ~ts:t0 ~depth:span_depth ~kind:Span ~dur ~fields:(fields @ extra) name;
    match on_close with Some g -> g dur | None -> ()
  in
  match f () with
  | v ->
    let extra = match fields_of with Some g -> g v | None -> [] in
    finish extra;
    v
  | exception e ->
    finish [ ("error", Jsonx.String (Printexc.to_string e)) ];
    raise e

let events t =
  Mutex.lock t.mu;
  let n = min t.total t.capacity in
  let evs =
    List.init n (fun i ->
        let idx = (t.head - n + i + t.capacity) mod t.capacity in
        match t.ring.(idx) with
        | Some e -> e
        | None -> assert false)
  in
  Mutex.unlock t.mu;
  evs

let total_recorded t = t.total

let close t =
  Mutex.lock t.mu;
  (match t.chan with
  | Some oc ->
    close_out oc;
    t.chan <- None
  | None -> ());
  Mutex.unlock t.mu
