(** The span tracer: nested timed spans and point events, recorded into a
    bounded in-memory ring buffer (oldest events evicted) and optionally
    streamed as JSON lines to a file so a run can be replayed offline.

    Timestamps come from the tracer's clock ({!Clock.now} by default, so
    swapping the process-wide {!Clock} source — a manual clock in tests, a
    monotonic one in production — retargets every tracer; an explicit
    [clock] overrides it per tracer) and are reported relative to tracer
    creation.

    {b Correlation.} Every event carries a process-unique [id] and an
    optional [parent] id. Within one domain, parents are implicit: the
    tracer keeps a per-domain stack of open spans (so nesting, default
    parents and [depth] are exact even when helper domains record
    concurrently). Across domains the edge is explicit: allocate an
    anchor with {!alloc_id}, record it ([?id]) on the main thread, and
    pass it as [?parent] from the helper — this is how a helper-domain
    compile span links back to the main-thread tier-up event.

    Recording is domain-safe: ring writes and the file sink are
    serialized by an internal mutex. *)

type kind =
  | Span  (** a closed timed region; [dur] is its length in seconds *)
  | Point  (** an instantaneous event; [dur] = 0 *)

type event = {
  seq : int;  (** 0-based, monotonically increasing, never reused *)
  ts : float;  (** seconds since tracer creation (span: its start time) *)
  id : int;  (** process-unique event id (0 only in pre-correlation traces) *)
  parent : int option;
      (** enclosing span on the recording domain, or the explicit anchor;
          [None] for top-level events *)
  kind : kind;
  name : string;
  dur : float;  (** seconds; 0 for point events *)
  depth : int;  (** span-nesting depth on the recording domain; top = 0 *)
  fields : (string * Jsonx.t) list;
}

type t

(** [create ?capacity ?clock ()] — ring of at most [capacity] (default
    4096, min 1) events. [clock] returns absolute seconds; when omitted
    the tracer reads the injectable {!Clock.now}. *)
val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t

(** Seconds elapsed since creation, per the tracer's clock. *)
val now : t -> float

(** Open-span nesting depth of the {e calling} domain. *)
val depth : t -> int

(** Allocate a fresh process-unique event id without recording anything —
    the cross-domain anchor: record it with [event ~id], hand it to
    another domain, parent spans under it with [?parent]. *)
val alloc_id : t -> int

(** Innermost open span id of the calling domain, if any. *)
val current_span : t -> int option

(** [set_file_sink t path] opens (truncates) [path] and mirrors every
    subsequent event to it as one JSON object per line. *)
val set_file_sink : t -> string -> unit

(** [event t name] records a point event at the calling domain's current
    depth. [id] overrides the fresh id (anchors), [parent] the implicit
    enclosing span. *)
val event :
  t -> ?fields:(string * Jsonx.t) list -> ?id:int -> ?parent:int -> string -> unit

(** Low-level entry: record one event with explicit fields and return its
    id. Used to synthesize spans measured elsewhere (e.g. a queue wait
    whose start was stamped at enqueue time). *)
val record :
  t ->
  ?ts:float ->
  ?id:int ->
  ?parent:int ->
  ?depth:int ->
  ?kind:kind ->
  ?dur:float ->
  ?fields:(string * Jsonx.t) list ->
  string ->
  int

(** [with_span t name f] runs [f] inside a span: the span is pushed on
    the calling domain's stack for the dynamic extent (so nested spans
    and point events parent to it), and a [Span] event carrying the
    duration is recorded when [f] returns. [parent] overrides the
    implicit parent (cross-domain anchors). [fields_of] computes extra
    fields from the result; [on_close] receives the measured duration
    (seconds) after the event is recorded — the metrics layer hooks
    histograms here. If [f] raises, the span is still recorded (with an
    ["error"] field) and the exception is re-raised. *)
val with_span :
  t ->
  ?fields:(string * Jsonx.t) list ->
  ?fields_of:('a -> (string * Jsonx.t) list) ->
  ?parent:int ->
  ?on_close:(float -> unit) ->
  string ->
  (unit -> 'a) ->
  'a

(** Events currently held by the ring, oldest first. *)
val events : t -> event list

(** Total events ever recorded (≥ [List.length (events t)]). *)
val total_recorded : t -> int

(** Flush and close the file sink, if any. Further events only hit the
    ring. *)
val close : t -> unit

val event_to_json : event -> Jsonx.t

(** Inverse of {!event_to_json}; raises [Jsonx.Parse_error] on a value
    that is not an encoded event. Traces written before ids existed
    decode with [id = 0] and [parent = None]. *)
val event_of_json : Jsonx.t -> event
