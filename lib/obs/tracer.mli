(** The span tracer: nested timed spans and point events, recorded into a
    bounded in-memory ring buffer (oldest events evicted) and optionally
    streamed as JSON lines to a file so a run can be replayed offline.

    Timestamps come from the tracer's clock ({!Clock.now} by default, so
    swapping the process-wide {!Clock} source — a manual clock in tests, a
    monotonic one in production — retargets every tracer; an explicit
    [clock] overrides it per tracer) and are reported relative to tracer
    creation.

    Recording is domain-safe: ring writes and the file sink are serialized
    by an internal mutex. Span [depth] is a tracer-wide notion, so with
    helper domains recording concurrently the depths of overlapping spans
    are approximate; [seq], timestamps and durations stay exact. *)

type kind =
  | Span  (** a closed timed region; [dur] is its length in seconds *)
  | Point  (** an instantaneous event; [dur] = 0 *)

type event = {
  seq : int;  (** 0-based, monotonically increasing, never reused *)
  ts : float;  (** seconds since tracer creation (span: its start time) *)
  kind : kind;
  name : string;
  dur : float;  (** seconds; 0 for point events *)
  depth : int;  (** span-nesting depth at record time; top level = 0 *)
  fields : (string * Jsonx.t) list;
}

type t

(** [create ?capacity ?clock ()] — ring of at most [capacity] (default
    4096, min 1) events. [clock] returns absolute seconds; when omitted
    the tracer reads the injectable {!Clock.now}. *)
val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t

(** Seconds elapsed since creation, per the tracer's clock. *)
val now : t -> float

val depth : t -> int

(** [set_file_sink t path] opens (truncates) [path] and mirrors every
    subsequent event to it as one JSON object per line. *)
val set_file_sink : t -> string -> unit

(** [event t name] records a point event at the current depth. *)
val event : t -> ?fields:(string * Jsonx.t) list -> string -> unit

(** [with_span t name f] runs [f] inside a span: depth is incremented for
    the dynamic extent, and a [Span] event carrying the duration is
    recorded when [f] returns. [fields_of] computes extra fields from the
    result; [on_close] receives the measured duration (seconds) after the
    event is recorded — the metrics layer hooks histograms here. If [f]
    raises, the span is still recorded (with an ["error"] field) and the
    exception is re-raised. *)
val with_span :
  t ->
  ?fields:(string * Jsonx.t) list ->
  ?fields_of:('a -> (string * Jsonx.t) list) ->
  ?on_close:(float -> unit) ->
  string ->
  (unit -> 'a) ->
  'a

(** Events currently held by the ring, oldest first. *)
val events : t -> event list

(** Total events ever recorded (≥ [List.length (events t)]). *)
val total_recorded : t -> int

(** Flush and close the file sink, if any. Further events only hit the
    ring. *)
val close : t -> unit

val event_to_json : event -> Jsonx.t

(** Inverse of {!event_to_json}; raises [Jsonx.Parse_error] on a value
    that is not an encoded event. *)
val event_of_json : Jsonx.t -> event
