(* Shared helpers for passes: block maps, instruction removal, GVN keys,
   alias dependency computation. *)

module Mir = Jitbull_mir.Mir
module Domtree = Jitbull_mir.Domtree
module Value = Jitbull_runtime.Value

let block_map (g : Mir.t) : (int, Mir.block) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (b : Mir.block) -> Hashtbl.replace tbl b.Mir.bid b) g.Mir.blocks;
  tbl

let block_of (blocks : (int, Mir.block) Hashtbl.t) (i : Mir.instr) =
  Hashtbl.find blocks i.Mir.in_block

(* Remove [i] from its block (body or phi section). The caller must have
   replaced or cleared all uses beforehand. *)
let remove_instr (blocks : (int, Mir.block) Hashtbl.t) (i : Mir.instr) =
  let b = block_of blocks i in
  if i.Mir.opcode = Mir.Phi then b.Mir.phis <- List.filter (fun x -> x != i) b.Mir.phis
  else b.Mir.body <- List.filter (fun x -> x != i) b.Mir.body

(* Insert [i] immediately before the control instruction of [b]. *)
let insert_before_control (b : Mir.block) (i : Mir.instr) =
  match List.rev b.Mir.body with
  | ctrl :: rest when Mir.is_control ctrl.Mir.opcode ->
    b.Mir.body <- List.rev (ctrl :: i :: rest);
    i.Mir.in_block <- b.Mir.bid
  | _ ->
    b.Mir.body <- b.Mir.body @ [ i ];
    i.Mir.in_block <- b.Mir.bid

(* Stable textual key of an opcode including its static payload, used for
   GVN congruence. *)
let opcode_key (op : Mir.opcode) =
  let base = Mir.opcode_name op in
  match op with
  | Mir.Constant v -> base ^ ":" ^ Value.type_name v ^ ":" ^ Value.to_display v
  | Mir.Parameter n -> base ^ ":" ^ string_of_int n
  | Mir.Load_global s | Mir.Store_global s | Mir.Get_prop s | Mir.Set_prop s ->
    base ^ ":" ^ s
  | Mir.Call_method (m, _) -> base ^ ":" ^ m
  | _ -> base

(* ---- alias dependency tokens ----

   For each load (instruction with a non-empty read set), compute a token
   such that two loads with equal opcode, operands and token observe the
   same memory state:
   - a lightweight memory-SSA version per alias class: every clobbering
     store defines a fresh version (its iid), a join whose incoming
     versions differ gets a fresh phi version, and the header of a loop
     that clobbers the class gets a fresh phi version (the backedge
     carries a different memory state than loop entry). Versions of the
     load's read classes are interned into a single id, so stores in loop
     bodies stay visible to post-loop loads regardless of the block order
     a linearized walk would pick; and
   - the innermost enclosing loop that contains such a store (loads inside
     a clobbering loop must not merge with loads outside it).

   [clobbers op cls] decides whether [op] writes class [cls]; the correct
   predicate follows {!Mir.effects}. Vulnerable pass variants pass a
   predicate with deliberate omissions — that is the modeled bug. *)

let default_clobbers (op : Mir.opcode) (cls : Mir.alias_class) =
  List.mem cls (Mir.effects op).Mir.writes

let compute_load_deps ?(clobbers = default_clobbers) (g : Mir.t) :
    (int, int * int) Hashtbl.t =
  let dom = Domtree.compute g in
  let rpo = Mir.compute_rpo g in
  (* loop membership: for every loop header, the set of blocks in its body
     and the alias classes stored inside *)
  let loops =
    List.filter_map
      (fun (h : Mir.block) ->
        let is_header = List.exists (fun p -> Domtree.dominates dom h p) h.Mir.preds in
        if not is_header then None
        else begin
          let body = Domtree.loop_body dom g h in
          let stored = Hashtbl.create 4 in
          List.iter
            (fun (b : Mir.block) ->
              if Hashtbl.mem body b.Mir.bid then
                List.iter
                  (fun (i : Mir.instr) ->
                    List.iter
                      (fun cls -> if clobbers i.Mir.opcode cls then Hashtbl.replace stored cls ())
                      Mir.all_alias_classes)
                  (Mir.instructions b))
            rpo;
          Some (h, body, stored)
        end)
      rpo
  in
  let innermost_clobbering_loop (b : Mir.block) (reads : Mir.alias_class list) =
    let candidates =
      List.filter
        (fun (_, body, stored) ->
          Hashtbl.mem body b.Mir.bid && List.exists (Hashtbl.mem stored) reads)
        loops
    in
    (* innermost = smallest body *)
    match
      List.sort
        (fun (_, b1, _) (_, b2, _) -> compare (Hashtbl.length b1) (Hashtbl.length b2))
        candidates
    with
    | (h, _, _) :: _ -> h.Mir.bid
    | [] -> -1
  in
  let deps = Hashtbl.create 64 in
  (* Memory versions per (block, alias class). Initial memory is version
     -1, a clobbering store's version is its iid (>= 0), and phi versions
     are fresh negatives below -1. RPO visits a reducible loop's header
     before any backedge source, so a pred with no recorded out-version is
     a backedge — handled by the clobbering-header rule rather than the
     join rule. A plain linearized walk is not enough here: RPO may place
     a loop's exit block before its body, hiding in-loop stores from
     post-loop loads and letting GVN merge loads separated by the loop. *)
  let in_version : (int * Mir.alias_class, int) Hashtbl.t = Hashtbl.create 64 in
  let out_version : (int * Mir.alias_class, int) Hashtbl.t = Hashtbl.create 64 in
  let phi_counter = ref (-2) in
  let fresh_phi () =
    let v = !phi_counter in
    decr phi_counter;
    v
  in
  let clobbering_header (b : Mir.block) cls =
    List.exists (fun ((h : Mir.block), _, stored) -> h.Mir.bid = b.Mir.bid && Hashtbl.mem stored cls) loops
  in
  List.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun cls ->
          let inv =
            if clobbering_header b cls then fresh_phi ()
            else
              match
                List.filter_map
                  (fun (p : Mir.block) -> Hashtbl.find_opt out_version (p.Mir.bid, cls))
                  b.Mir.preds
              with
              | [] -> -1
              | v :: rest -> if List.for_all (Int.equal v) rest then v else fresh_phi ()
          in
          Hashtbl.replace in_version (b.Mir.bid, cls) inv;
          let cur = ref inv in
          List.iter
            (fun (i : Mir.instr) -> if clobbers i.Mir.opcode cls then cur := i.Mir.iid)
            (Mir.instructions b);
          Hashtbl.replace out_version (b.Mir.bid, cls) !cur)
        Mir.all_alias_classes)
    rpo;
  (* Intern the version vector of each load's read classes: equal vectors
     (same opcode, hence same read set) get equal ids. *)
  let combo_ids : (int list, int) Hashtbl.t = Hashtbl.create 16 in
  let combo_id versions =
    match Hashtbl.find_opt combo_ids versions with
    | Some id -> id
    | None ->
      let id = Hashtbl.length combo_ids in
      Hashtbl.add combo_ids versions id;
      id
  in
  List.iter
    (fun (b : Mir.block) ->
      let local = Hashtbl.create 4 in
      List.iter
        (fun cls -> Hashtbl.replace local cls (Hashtbl.find in_version (b.Mir.bid, cls)))
        Mir.all_alias_classes;
      List.iter
        (fun (i : Mir.instr) ->
          let eff = Mir.effects i.Mir.opcode in
          if eff.Mir.reads <> [] then begin
            let versions = List.map (fun cls -> Hashtbl.find local cls) eff.Mir.reads in
            let loop_marker = innermost_clobbering_loop b eff.Mir.reads in
            Hashtbl.replace deps i.Mir.iid (combo_id versions, loop_marker)
          end;
          List.iter
            (fun cls -> if clobbers i.Mir.opcode cls then Hashtbl.replace local cls i.Mir.iid)
            Mir.all_alias_classes)
        (Mir.instructions b))
    rpo;
  deps

(* Map from instruction to its users (computed fresh; O(instrs)). *)
let users_of (g : Mir.t) : (int, Mir.instr list) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (i : Mir.instr) ->
      List.iter
        (fun (op : Mir.instr) ->
          let cur = match Hashtbl.find_opt tbl op.Mir.iid with Some l -> l | None -> [] in
          Hashtbl.replace tbl op.Mir.iid (i :: cur))
        i.Mir.operands)
    (Mir.all_instructions g);
  tbl
