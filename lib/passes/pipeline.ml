module Mir = Jitbull_mir.Mir
module Snapshot = Jitbull_mir.Snapshot
module Verifier = Jitbull_mir.Verifier
module Obs = Jitbull_obs.Obs

let passes : Pass.t list =
  [
    Inline.pass;
    Split_critical_edges.pass;
    Phi_elimination.pass;
    Type_analysis.pass;
    Simplify.pass;
    Alias_analysis.pass;
    Gvn.pass;
    Licm.pass;
    Range_analysis.pass;
    Bounds_check_elim.pass;
    Constant_folding.pass;
    Fold_tests.pass;
    Empty_block_elim.pass;
    Dce.pass;
    Sink.pass;
    Edge_case_analysis.pass;
    Reorder.pass;
    Renumber.pass;
  ]

let pass_names = List.map (fun (p : Pass.t) -> p.Pass.name) passes

let find name = List.find_opt (fun (p : Pass.t) -> String.equal p.Pass.name name) passes

let can_disable name =
  match find name with
  | Some p -> p.Pass.can_disable
  | None -> false

let graph_size (g : Mir.t) = List.length (Mir.all_instructions g)

(* Per-pass sampling-profiler tags, interned once here (the pass list is
   static); the table is read-only afterwards, so lock-free to consult. *)
let prof_tags : (string, int) Hashtbl.t =
  let h = Hashtbl.create 32 in
  List.iter
    (fun (p : Pass.t) ->
      Hashtbl.replace h p.Pass.name
        (Jitbull_obs.Profile.tag ("pass;" ^ p.Pass.name)))
    passes;
  h

let prof_tag (p : Pass.t) =
  match Hashtbl.find_opt prof_tags p.Pass.name with Some t -> t | None -> 0

(* Run one pass (and the verifier, if requested). With an [Obs.t]
   installed, each pass gets its own span, a ["pass.<name>.seconds"]
   latency histogram, a ["pass.<name>.delta_size"] counter accumulating
   the instruction-count change, a ["pass.<name>.ir_delta_size"]
   histogram of per-run |Δ instructions| (the pass-effectiveness
   distribution, scrapeable from /metrics), and a ["pass.<name>.changed"]
   counter of runs whose instruction count moved at all — the raw
   material of the per-pass profile, the telemetry bench, and the
   fuzzer's coverage map. *)
let exec_pass ctx ~obs ~verify g (p : Pass.t) =
  let run () =
    Jitbull_obs.Profile.with_tag (prof_tag p) (fun () -> p.Pass.run ctx g)
  in
  match obs with
  | None ->
    run ();
    if verify then Verifier.check g
  | Some _ ->
    let before = graph_size g in
    Obs.span obs
      ("pass." ^ p.Pass.name)
      (fun () ->
        run ();
        if verify then Verifier.check g);
    let after = graph_size g in
    Obs.add obs ("pass." ^ p.Pass.name ^ ".delta_size") (after - before);
    Obs.observe obs ~bounds:Jitbull_obs.Metrics.size_bounds
      ("pass." ^ p.Pass.name ^ ".ir_delta_size")
      (float_of_int (abs (after - before)));
    if after <> before then Obs.incr obs ("pass." ^ p.Pass.name ^ ".changed")

(* Run without snapshotting: the engine uses this when JITBULL's database
   is empty, which is how the paper gets zero overhead in that case. *)
let run_quiet vulns ?obs ?inline_resolver ?(disabled = []) ?(verify = false) (g : Mir.t) =
  Obs.incr obs "pipeline.runs";
  let ctx = Pass.make_ctx ?inline_resolver vulns in
  List.iter
    (fun (p : Pass.t) ->
      if not (List.mem p.Pass.name disabled) then exec_pass ctx ~obs ~verify g p)
    passes

let run vulns ?obs ?inline_resolver ?(disabled = []) ?(verify = false) (g : Mir.t) =
  Obs.incr obs "pipeline.runs";
  let ctx = Pass.make_ctx ?inline_resolver vulns in
  let trace = ref [ ("initial", Snapshot.take g) ] in
  List.iter
    (fun (p : Pass.t) ->
      if not (List.mem p.Pass.name disabled) then exec_pass ctx ~obs ~verify g p;
      trace := (p.Pass.name, Snapshot.take g) :: !trace)
    passes;
  List.rev !trace
