(** The ordered optimization pipeline — our stand-in for IonMonkey's
    [OptimizeMIR] (32 passes in SpiderMonkey; 18 here, documented scaling
    in DESIGN.md): inlining, critical-edge splitting, phi elimination,
    type analysis, simplification, alias analysis, GVN, LICM, range
    analysis, bounds-check elimination, constant folding, test folding,
    empty-block elimination, DCE, sinking, edge-case analysis,
    scheduling, renumbering.

    Two of the passes ([splitcriticaledges], [renumber]) are mandatory and
    cannot be disabled, exercising the paper's scenario (3) where JITBULL
    must fall back to no-JIT for a function. *)

val passes : Pass.t list

(** [pass_names] in pipeline order. *)
val pass_names : string list

(** [find name] — the pass with that name, if any. *)
val find : string -> Pass.t option

(** [can_disable name] is false for unknown passes too. *)
val can_disable : string -> bool

(** [run vulns ?disabled ?verify g] runs the pipeline on [g] in place.
    Passes named in [disabled] are skipped (their Δ is then empty — the
    JITBULL mitigation). With [verify] (default false) the MIR verifier
    runs after every pass and raises on violations.

    With [obs] installed, every executed pass is traced as a
    ["pass.<name>"] span, timed into a ["pass.<name>.seconds"] histogram,
    and its instruction-count change accumulated in a
    ["pass.<name>.delta_size"] counter; without it the pipeline runs
    exactly as before.

    Returns the snapshot trace: the initial IR (IR₀) followed by one
    snapshot per pass (IRᵢ), skipped passes contributing an unchanged
    snapshot — [n+1] snapshots for [n] passes, exactly the inputs of the
    paper's Δ extractor. *)
val run :
  Vuln_config.t ->
  ?obs:Jitbull_obs.Obs.t ->
  ?inline_resolver:(string -> Jitbull_mir.Mir.t option) ->
  ?disabled:string list ->
  ?verify:bool ->
  Jitbull_mir.Mir.t ->
  (string * Jitbull_mir.Snapshot.t) list

(** [run_quiet] is [run] without snapshotting — used by the engine when no
    JITBULL database is installed, giving the paper's zero-overhead
    empty-DB behaviour. *)
val run_quiet :
  Vuln_config.t ->
  ?obs:Jitbull_obs.Obs.t ->
  ?inline_resolver:(string -> Jitbull_mir.Mir.t option) ->
  ?disabled:string list ->
  ?verify:bool ->
  Jitbull_mir.Mir.t ->
  unit
