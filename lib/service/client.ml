module Http = Jitbull_obs.Http_export
module Obs = Jitbull_obs.Obs
module Metrics = Jitbull_obs.Metrics
module Audit = Jitbull_obs.Audit
module Fleet = Jitbull_obs.Fleet
module Propagate = Jitbull_obs.Propagate
module Jsonx = Jitbull_obs.Jsonx
module Sexpr = Jitbull_util.Sexpr
module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module Dna = Jitbull_core.Dna
module Comparator = Jitbull_core.Comparator
module Jitbull = Jitbull_core.Jitbull

(* ---- stateless round-trip on a raw connection (bench clients) ---- *)

(* [body] is a pre-encoded JSONL batch of [count] requests — bench
   clients replaying a recorded stream encode each window once and
   resend it, keeping request serialization out of the measured path. *)
let verdict_roundtrip_raw conn ?headers ~count body =
  match Http.Conn.request conn ~meth:"POST" ?headers ~body "/verdict" with
  | 200, _, body -> (
    match Proto.decode_resps body with
    | resps when List.length resps = count -> Ok resps
    | resps ->
      Error
        (Printf.sprintf "short batch: %d responses to %d requests"
           (List.length resps) count)
    | exception Jsonx.Parse_error msg -> Error ("bad response: " ^ msg))
  | status, _, body -> Error (Printf.sprintf "HTTP %d: %s" status body)
  | exception Http.Closed -> Error "connection closed"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let verdict_roundtrip conn ?headers reqs =
  verdict_roundtrip_raw conn ?headers ~count:(List.length reqs)
    (Proto.encode_reqs reqs)

(* ---- the coalescer: many engine threads, one wire batch ---- *)

type pending = {
  p_req : Proto.verdict_req;
  p_parent : int option;
      (** the submitting thread's open span at submit time — the remote
          parent the wire batch's traceparent header carries *)
  mutable p_result : (Proto.verdict_resp, string) result option;
}

type coalescer = {
  c_mu : Mutex.t;
  c_nonempty : Condition.t;  (** queue went non-empty (dispatcher waits) *)
  c_done : Condition.t;  (** results were written (submitters wait) *)
  c_not_full : Condition.t;  (** space freed (submitters blocked on bound) *)
  c_queue : pending Queue.t;
  c_max_batch : int;
  c_max_queue : int;
  mutable c_stop : bool;
}

type t = {
  port : int;
  timeout_s : float;
  obs : Obs.t option;
  client_id : string;  (** fleet label ([x-jitbull-client] header) *)
  trace_id : string;  (** this client's traceparent trace id *)
  push_interval_s : float option;  (** telemetry push cadence, if any *)
  mutable pushed_seq : int;  (** audit seq already pushed (delta cursor) *)
  gen : int Atomic.t;  (** latest server generation this client observed *)
  replica : Db.t;  (** local-fallback DB, synced via [/delta] *)
  replica_gen : int Atomic.t;  (** server generation [replica] reflects *)
  replica_mu : Mutex.t;  (** serializes replica syncs *)
  warm_mu : Mutex.t;
  warm : (int * int, int * Engine.decision) Hashtbl.t;
      (** (bytecode hash, feedback hash) → (generation, decision) from
          [/warm]; consulted only while the generation still matches *)
  coal : coalescer;
  mutable disp_conn : Http.Conn.t option;  (** dispatcher's connection *)
  sub_mu : Mutex.t;
  mutable sub_conn : Http.Conn.t option;
      (** subscriber's connection; {!close} shuts it down to interrupt
          the long poll *)
  caches : (Mutex.t * Engine.Policy_cache.t list ref);
      (** engine policy caches to flush eagerly on a push *)
  on_push : (Mutex.t * (int -> unit) list ref);
  stop_flag : bool Atomic.t;
  mutable threads : Thread.t list;
}

let generation t = Atomic.get t.gen
let replica t = t.replica
let client_id t = t.client_id
let trace_id t = t.trace_id

(* ---- dispatcher ---- *)

let dispatcher_conn t =
  match t.disp_conn with
  | Some c -> c
  | None ->
    let c = Http.Conn.connect ~timeout_s:t.timeout_s ~port:t.port () in
    t.disp_conn <- Some c;
    c

let drop_dispatcher_conn t =
  match t.disp_conn with
  | Some c ->
    Http.Conn.close c;
    t.disp_conn <- None
  | None -> ()

let note_generation t g =
  (* max-update: responses may arrive out of order w.r.t. pushes *)
  let rec go () =
    let cur = Atomic.get t.gen in
    if g > cur && not (Atomic.compare_and_set t.gen cur g) then go ()
  in
  go ()

(* One wire round-trip for [batch] (already numbered 0..n-1), writing
   each slot's result. Reconnects and retries once on a transport
   error — the request is idempotent (a pure query).

   Propagation is batch-granular: the coalescer folds many submitters
   into one HTTP request, so the traceparent header carries the first
   pending's captured span as the batch's remote parent (one server
   span per wire round-trip, parented on the submitter that opened the
   batch), and x-jitbull-client labels every request from this
   client. *)
let dispatch_batch t batch =
  let reqs = List.mapi (fun i p -> { p.p_req with Proto.vr_id = i }) batch in
  let headers =
    ("x-jitbull-client", t.client_id)
    ::
    (match List.find_map (fun p -> p.p_parent) batch with
    | Some parent ->
      [
        ( Propagate.header_name,
          Propagate.encode
            { Propagate.trace_id = t.trace_id; parent_id = parent } );
      ]
    | None -> [])
  in
  let attempt () =
    match verdict_roundtrip (dispatcher_conn t) ~headers reqs with
    | Ok resps -> Ok resps
    | Error e ->
      drop_dispatcher_conn t;
      Error e
    | exception e ->
      drop_dispatcher_conn t;
      Error (Printexc.to_string e)
  in
  let result = match attempt () with Ok r -> Ok r | Error _ -> attempt () in
  match result with
  | Ok resps ->
    let by_id = Hashtbl.create (List.length resps) in
    List.iter (fun (r : Proto.verdict_resp) ->
        note_generation t r.Proto.vs_generation;
        Hashtbl.replace by_id r.Proto.vs_id r)
      resps;
    List.iteri
      (fun i p ->
        p.p_result <-
          Some
            (match Hashtbl.find_opt by_id i with
            | Some r -> Ok r
            | None -> Error "missing response id"))
      batch
  | Error e -> List.iter (fun p -> p.p_result <- Some (Error e)) batch

let dispatcher_loop t =
  let c = t.coal in
  let running = ref true in
  while !running do
    Mutex.lock c.c_mu;
    while Queue.is_empty c.c_queue && not c.c_stop do
      Condition.wait c.c_nonempty c.c_mu
    done;
    if c.c_stop && Queue.is_empty c.c_queue then begin
      Mutex.unlock c.c_mu;
      running := false
    end
    else begin
      let batch = ref [] in
      while (not (Queue.is_empty c.c_queue)) && List.length !batch < c.c_max_batch
      do
        batch := Queue.pop c.c_queue :: !batch
      done;
      Condition.broadcast c.c_not_full;
      Mutex.unlock c.c_mu;
      let batch = List.rev !batch in
      dispatch_batch t batch;
      Mutex.lock c.c_mu;
      Condition.broadcast c.c_done;
      Mutex.unlock c.c_mu
    end
  done

(* Enqueue one request and block until the dispatcher resolves it. The
   queue is bounded: when [c_max_queue] requests are already waiting,
   submit blocks (backpressure) rather than growing the batch beyond
   what one round-trip should carry. *)
let submit t (req : Proto.verdict_req) =
  (* capture the caller's open span before taking the coalescer lock:
     the dispatcher thread that sends the batch has no useful context *)
  let parent = Obs.current_span t.obs in
  let c = t.coal in
  Mutex.lock c.c_mu;
  if c.c_stop then begin
    Mutex.unlock c.c_mu;
    Error "client closed"
  end
  else begin
    while Queue.length c.c_queue >= c.c_max_queue && not c.c_stop do
      Condition.wait c.c_not_full c.c_mu
    done;
    if c.c_stop then begin
      Mutex.unlock c.c_mu;
      Error "client closed"
    end
    else begin
      let p = { p_req = req; p_parent = parent; p_result = None } in
      Queue.push p c.c_queue;
      Condition.signal c.c_nonempty;
      while p.p_result = None && not c.c_stop do
        Condition.wait c.c_done c.c_mu
      done;
      let r =
        match p.p_result with Some r -> r | None -> Error "client closed"
      in
      Mutex.unlock c.c_mu;
      r
    end
  end

(* ---- replica sync (the local-fallback DB) ---- *)

(* Every request this client issues — verdict batches, replica syncs,
   warm prefetches, long polls, telemetry pushes — carries its fleet
   label, so server logs and spans attribute wire traffic per client
   even off the verdict path. *)
let base_headers t = [ ("x-jitbull-client", t.client_id) ]

let fetch_json conn ?headers ?timeout_s path =
  match Http.Conn.request conn ?headers ?timeout_s path with
  | 200, _, body -> Ok (Jsonx.parse body)
  | status, _, body -> Error (Printf.sprintf "HTTP %d: %s" status body)

(* Pull [/delta] against the replica's generation and apply it. The
   server numbers generations by its own history, so the replica's
   entry list is maintained to mirror the server's and [replica_gen]
   tracks the server generation it reflects — [t.replica]'s own
   generation counter moves too (every apply bumps it), which is what
   invalidates fallback verdicts decided against an older replica. *)
let sync_replica t conn =
  Mutex.lock t.replica_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.replica_mu)
    (fun () ->
      match
        fetch_json conn ~headers:(base_headers t)
          (Printf.sprintf "/delta?gen=%d" (Atomic.get t.replica_gen))
      with
      | Error e -> Error e
      | Ok j -> (
        match
          let gen = Jsonx.to_int (Jsonx.member "generation" j) in
          let entries =
            List.map
              (fun s -> Db.entry_of_sexpr (Sexpr.of_string (Jsonx.to_str s)))
              (Jsonx.to_list_exn (Jsonx.member "entries" j))
          in
          (match Jsonx.to_str (Jsonx.member "mode" j) with
          | "append" -> List.iter (fun e -> Db.add t.replica e) entries
          | _ ->
            (* resync: drop everything, then append the snapshot *)
            List.iter (fun cve -> Db.remove_cve t.replica cve)
              (Db.cves t.replica);
            List.iter (fun e -> Db.add t.replica e) entries);
          gen
        with
        | gen ->
          Atomic.set t.replica_gen gen;
          note_generation t gen;
          Ok gen
        | exception Jsonx.Parse_error msg -> Error ("bad delta: " ^ msg)
        | exception Sexpr.Decode_error msg -> Error ("bad delta: " ^ msg)))

let with_conn t f =
  let conn = Http.Conn.connect ~timeout_s:t.timeout_s ~port:t.port () in
  Fun.protect ~finally:(fun () -> Http.Conn.close conn) (fun () -> f conn)

let sync t = with_conn t (fun conn -> sync_replica t conn)

(* ---- cache warming ---- *)

let warm t ~n =
  with_conn t (fun conn ->
      match fetch_json conn ~headers:(base_headers t) (Printf.sprintf "/warm?n=%d" n) with
      | Error e -> Error e
      | Ok j -> (
        (* parse fully before touching the table, so a malformed payload
           never leaves it half-updated *)
        match
          let gen = Jsonx.to_int (Jsonx.member "generation" j) in
          let cells =
            List.map
              (fun e ->
                let passes =
                  List.map Jsonx.to_str
                    (Jsonx.to_list_exn (Jsonx.member "passes" e))
                in
                let verdict =
                  match Jsonx.to_str (Jsonx.member "verdict" e) with
                  | "allow" -> `Allow
                  | "disable" -> `Disable passes
                  | "forbid" -> `Forbid
                  | s -> raise (Jsonx.Parse_error ("unknown verdict: " ^ s))
                in
                ( Jsonx.to_int (Jsonx.member "bytecode_hash" e),
                  Jsonx.to_int (Jsonx.member "feedback_hash" e),
                  Proto.decision_of_verdict verdict ))
              (Jsonx.to_list_exn (Jsonx.member "entries" j))
          in
          (gen, cells)
        with
        | gen, cells ->
          Mutex.lock t.warm_mu;
          List.iter
            (fun (bh, fh, d) -> Hashtbl.replace t.warm (bh, fh) (gen, d))
            cells;
          Mutex.unlock t.warm_mu;
          note_generation t gen;
          Ok (List.length cells)
        | exception Jsonx.Parse_error msg -> Error ("bad warm payload: " ^ msg)))

(* ---- push subscription ---- *)

let register_cache t cache =
  let mu, l = t.caches in
  Mutex.lock mu;
  l := cache :: !l;
  Mutex.unlock mu

let on_push t f =
  let mu, l = t.on_push in
  Mutex.lock mu;
  l := f :: !l;
  Mutex.unlock mu

let apply_push t gen =
  (* order matters for the no-stale-verdict guarantee: advance the
     generation the policy caches key on FIRST (any later lookup now
     revalidates against the post-push generation), then eagerly flush,
     then resync the replica and drop stale warm entries *)
  note_generation t gen;
  let cmu, caches = t.caches in
  Mutex.lock cmu;
  let cs = !caches in
  Mutex.unlock cmu;
  List.iter Engine.Policy_cache.flush cs;
  Mutex.lock t.warm_mu;
  Hashtbl.reset t.warm;
  Mutex.unlock t.warm_mu;
  Obs.incr t.obs "engine.remote_pushes";
  let pmu, fs = t.on_push in
  Mutex.lock pmu;
  let fs = !fs in
  Mutex.unlock pmu;
  List.iter (fun f -> f gen) fs

let subscriber_loop t =
  let get_conn () =
    Mutex.lock t.sub_mu;
    let c =
      match t.sub_conn with
      | Some c -> c
      | None ->
        let c = Http.Conn.connect ~timeout_s:t.timeout_s ~port:t.port () in
        t.sub_conn <- Some c;
        c
    in
    Mutex.unlock t.sub_mu;
    c
  in
  let drop_conn () =
    Mutex.lock t.sub_mu;
    (match t.sub_conn with Some c -> Http.Conn.close c | None -> ());
    t.sub_conn <- None;
    Mutex.unlock t.sub_mu
  in
  while not (Atomic.get t.stop_flag) do
    match
      let c = get_conn () in
      (* long poll well past the server's wait; the request-level timeout
         keeps a dead server from hanging us forever, and [close]
         interrupts via [Conn.shutdown] *)
      fetch_json c ~headers:(base_headers t) ~timeout_s:35.0
        (Printf.sprintf "/subscribe?gen=%d&timeout_ms=30000"
           (Atomic.get t.gen))
    with
    | Ok j -> (
      match Jsonx.to_int (Jsonx.member "generation" j) with
      | g ->
        if g > Atomic.get t.gen then begin
          apply_push t g;
          ignore (sync_replica t (get_conn ()) : (int, string) result)
        end
      | exception Jsonx.Parse_error _ -> drop_conn ())
    | Error _ ->
      drop_conn ();
      if not (Atomic.get t.stop_flag) then Unix.sleepf 0.2
    | exception _ ->
      drop_conn ();
      if not (Atomic.get t.stop_flag) then Unix.sleepf 0.2
  done;
  drop_conn ()

(* ---- fleet telemetry push ---- *)

(* Build and POST one cumulative snapshot + audit delta. Totals are
   cumulative, so re-pushing is idempotent server-side; the delta
   cursor [pushed_seq] only advances on a 200, so records carried by a
   failed push ride again on the next one. *)
let push t =
  match t.obs with
  | None -> Ok 0
  | Some o ->
    let audit = Obs.audit o in
    let snapshot =
      {
        Fleet.sn_client = t.client_id;
        sn_ts = Obs.now t.obs;
        sn_totals = Audit.totals audit;
        sn_install_p99 =
          Metrics.quantile
            (Metrics.histogram ~bounds:Metrics.queue_latency_bounds
               (Obs.metrics o) "compile.install_latency_seconds")
            0.99;
        sn_metrics = Metrics.view_to_json (Obs.view t.obs);
      }
    in
    (* bound the wire payload; the tail rides on the next push *)
    let deltas =
      List.filteri (fun i _ -> i < 512) (Audit.since audit t.pushed_seq)
    in
    let body = Fleet.encode_push snapshot deltas in
    (match
       with_conn t (fun conn ->
           Http.Conn.request conn ~meth:"POST" ~headers:(base_headers t)
             ~body "/push")
     with
    | 200, _, _ ->
      (match List.rev deltas with
      | last :: _ -> t.pushed_seq <- last.Audit.seq + 1
      | [] -> ());
      Obs.incr t.obs "engine.fleet_pushes";
      Ok (List.length deltas)
    | status, _, body -> Error (Printf.sprintf "HTTP %d: %s" status body)
    | exception Http.Closed -> Error "connection closed"
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let pusher_loop t interval =
  while not (Atomic.get t.stop_flag) do
    (* chunked sleep so close never waits out a long interval *)
    let deadline = Unix.gettimeofday () +. interval in
    while (not (Atomic.get t.stop_flag)) && Unix.gettimeofday () < deadline do
      Unix.sleepf (Float.min 0.05 interval)
    done;
    if not (Atomic.get t.stop_flag) then
      ignore (push t : (int, string) result)
  done

(* ---- lifecycle ---- *)

let connect ?(timeout_s = 2.0) ?(max_batch = 32) ?(max_queue = 256) ?obs
    ?(subscribe = true) ?client_id ?push_interval_s ~port () =
  let client_id =
    match client_id with
    | Some c -> c
    | None -> "pid-" ^ string_of_int (Unix.getpid ())
  in
  let t =
    {
      port;
      timeout_s;
      obs;
      client_id;
      trace_id = Propagate.fresh_trace_id ();
      push_interval_s;
      pushed_seq = 0;
      gen = Atomic.make 0;
      replica = Db.create ();
      replica_gen = Atomic.make 0;
      replica_mu = Mutex.create ();
      warm_mu = Mutex.create ();
      warm = Hashtbl.create 64;
      coal =
        {
          c_mu = Mutex.create ();
          c_nonempty = Condition.create ();
          c_done = Condition.create ();
          c_not_full = Condition.create ();
          c_queue = Queue.create ();
          c_max_batch = max max_batch 1;
          c_max_queue = max max_queue 1;
          c_stop = false;
        };
      disp_conn = None;
      sub_mu = Mutex.create ();
      sub_conn = None;
      caches = (Mutex.create (), ref []);
      on_push = (Mutex.create (), ref []);
      stop_flag = Atomic.make false;
      threads = [];
    }
  in
  (* initial replica sync before any verdict can fall back to it; a
     server that is still coming up is tolerated (the subscriber's later
     sync catches the replica up) *)
  (try ignore (sync t : (int, string) result) with _ -> ());
  let threads = [ Thread.create dispatcher_loop t ] in
  let threads =
    if subscribe then Thread.create subscriber_loop t :: threads else threads
  in
  let threads =
    match push_interval_s with
    | Some iv when iv > 0.0 ->
      Thread.create (fun () -> pusher_loop t iv) () :: threads
    | _ -> threads
  in
  t.threads <- threads;
  t

let close t =
  Atomic.set t.stop_flag true;
  (* interrupt a long poll in flight *)
  Mutex.lock t.sub_mu;
  (match t.sub_conn with Some c -> Http.Conn.shutdown c | None -> ());
  Mutex.unlock t.sub_mu;
  let c = t.coal in
  Mutex.lock c.c_mu;
  c.c_stop <- true;
  Condition.broadcast c.c_nonempty;
  Condition.broadcast c.c_done;
  Condition.broadcast c.c_not_full;
  Mutex.unlock c.c_mu;
  List.iter Thread.join t.threads;
  t.threads <- [];
  drop_dispatcher_conn t;
  (* final push so a short-lived client's totals reach the fleet view;
     the pusher thread is already joined, so [pushed_seq] is ours *)
  match t.push_interval_s with
  | Some _ -> ( try ignore (push t : (int, string) result) with _ -> ())
  | None -> ()

(* ---- the remote analyzer and engine configuration ---- *)

let warm_lookup t ~bytecode_hash ~feedback_hash =
  let g = Atomic.get t.gen in
  Mutex.lock t.warm_mu;
  let r =
    match Hashtbl.find_opt t.warm (bytecode_hash, feedback_hash) with
    | Some (wg, d) when wg = g -> Some d
    | _ -> None
  in
  Mutex.unlock t.warm_mu;
  r

let analyzer ?params t : Engine.analyzer =
  let fallback = Jitbull.analyzer ?params ?obs:t.obs t.replica in
 fun ~ctx ~func_index ~name ~trace ->
  match
    warm_lookup t ~bytecode_hash:ctx.Engine.cc_bytecode_hash
      ~feedback_hash:ctx.Engine.cc_feedback_hash
  with
  | Some d ->
    Obs.incr t.obs "engine.remote_verdicts";
    Obs.incr t.obs "engine.warm_hits";
    d
  | None -> (
    let dna = Dna.extract trace in
    let req =
      {
        Proto.vr_id = 0;
        vr_func = name;
        vr_bytecode_hash = ctx.Engine.cc_bytecode_hash;
        vr_feedback_hash = ctx.Engine.cc_feedback_hash;
        vr_dna = Sexpr.to_string (Dna.to_sexpr dna);
      }
    in
    match
      (* the span whose id rides the wire as the batch's remote parent:
         [submit] captures it as [p_parent] before parking the request *)
      Obs.span t.obs
        ~fields:[ ("func", Jsonx.String name) ]
        "remote_verdict"
        (fun () -> submit t req)
    with
    | Ok resp ->
      Obs.incr t.obs "engine.remote_verdicts";
      Proto.decision_of_verdict resp.Proto.vs_verdict
    | Error _ ->
      (* server unreachable or timed out: decide locally against the
         replica — possibly stale, but never unprotected *)
      Obs.incr t.obs "engine.remote_fallbacks";
      fallback ~ctx ~func_index ~name ~trace)

let engine_config ?params t ~vulns () =
  let cache =
    Engine.Policy_cache.create ~generation:(fun () -> Atomic.get t.gen) ()
  in
  register_cache t cache;
  {
    Engine.default_config with
    Engine.vulns;
    analyzer = Some (analyzer ?params t);
    obs = t.obs;
    policy_cache = Some cache;
  }
