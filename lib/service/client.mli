(** The engine-side jitbulld client: a persistent connection pool
    (dispatcher + subscriber threads), a bounded request coalescer that
    turns concurrent compile-time verdict queries into JSONL batches,
    push-driven policy-cache invalidation, and a local replica DB for
    fallback when the server is unreachable.

    Wiring it into an engine is one call: {!engine_config} returns an
    {!Jitbull_jit.Engine.config} whose analyzer asks the server (warm
    table → coalescer → wire) and whose policy cache keys on the latest
    server generation this client has observed — a generation push
    advances that value {e before} anything else happens, so a verdict
    cached pre-push can never be accepted post-push (the
    [Policy_cache.store ~if_generation] discipline, stretched over the
    wire).

    {b Trace propagation.} Every wire request carries this client's
    trace context: an [x-jitbull-client] label plus, when the
    submitting thread had an open span, a traceparent header
    ({!Jitbull_obs.Propagate}) naming it — the coalescer stamps each
    batch with the first pending submitter's span, so the server's
    "service.verdict" span parents back into this process's trace.
    The remote analyzer wraps its query in a [remote_verdict] span for
    exactly this purpose.

    {b Fleet telemetry.} With [push_interval_s], a pusher thread POSTs
    a cumulative snapshot (audit totals, install-latency p99, the full
    metrics view) plus the audit-record delta since the last accepted
    push to [/push] every interval, and once more on {!close} — see
    {!Jitbull_obs.Fleet}.

    Counters (via [obs]): [engine.remote_verdicts] (answered by the
    server or the warm table), [engine.warm_hits],
    [engine.remote_fallbacks] (answered locally against the replica),
    [engine.remote_pushes] (generation bumps observed),
    [engine.fleet_pushes] (accepted telemetry pushes). *)

type t

(** [connect ~port ()] starts the dispatcher thread (and, unless
    [subscribe:false], the long-poll subscriber) and pulls an initial
    replica sync. [max_batch] bounds requests per wire round-trip;
    [max_queue] bounds the coalescer (further submitters block —
    backpressure, not unbounded batching). [timeout_s] is the per-
    round-trip socket timeout after which a verdict falls back to the
    replica. [client_id] (default ["pid-<pid>"], at most 128 bytes
    server-side) labels this client's requests and fleet series;
    [push_interval_s] enables the telemetry pusher. *)
val connect :
  ?timeout_s:float ->
  ?max_batch:int ->
  ?max_queue:int ->
  ?obs:Jitbull_obs.Obs.t ->
  ?subscribe:bool ->
  ?client_id:string ->
  ?push_interval_s:float ->
  port:int ->
  unit ->
  t

(** Latest server DB generation this client has observed (responses,
    pushes, syncs — monotone). *)
val generation : t -> int

val replica : t -> Jitbull_core.Db.t

(** The fleet label every request carries ([x-jitbull-client]). *)
val client_id : t -> string

(** The 32-hex trace id this client's traceparent headers carry. *)
val trace_id : t -> string

(** [submit t req] — enqueue one request on the coalescer and block
    until its batch round-trips. Thread-safe; this is what the remote
    analyzer calls. *)
val submit :
  t -> Proto.verdict_req -> (Proto.verdict_resp, string) result

(** [verdict_roundtrip conn reqs] — one stateless JSONL batch on a raw
    connection (bench clients own their connections and batch
    explicitly). [headers] are extra request headers, e.g. a
    traceparent. *)
val verdict_roundtrip :
  Jitbull_obs.Http_export.Conn.t ->
  ?headers:(string * string) list ->
  Proto.verdict_req list ->
  (Proto.verdict_resp list, string) result

(** Like {!verdict_roundtrip} with a pre-encoded JSONL body of [count]
    requests — stream-replay clients encode each batch once and resend
    it, keeping serialization off the measured path. *)
val verdict_roundtrip_raw :
  Jitbull_obs.Http_export.Conn.t ->
  ?headers:(string * string) list ->
  count:int ->
  string ->
  (Proto.verdict_resp list, string) result

(** Pull [/delta] now and apply it to the replica. Returns the server
    generation synced to. *)
val sync : t -> (int, string) result

(** Prefill the warm table from [/warm?n=K]. Returns entries loaded.
    Warm entries are consulted only while their generation matches the
    client's current one, and the table is dropped on every push. *)
val warm : t -> n:int -> (int, string) result

(** Push one telemetry snapshot + audit delta to [/push] now. [Ok n]
    is the number of delta records accepted; the delta cursor advances
    only on success, so failed pushes retry their records. [Ok 0]
    without a wire round-trip when the client has no [obs]. *)
val push : t -> (int, string) result

(** Run [f gen] after each observed generation push (after caches are
    flushed and before the replica resync completes). *)
val on_push : t -> (int -> unit) -> unit

(** Register an additional policy cache to flush eagerly on pushes
    ({!engine_config} registers its own automatically). *)
val register_cache : t -> Jitbull_jit.Engine.Policy_cache.t -> unit

(** The remote analyzer: warm-table hit, else DNA extraction + coalesced
    wire query, else ([Error]/timeout) local fallback against the
    replica with {!Jitbull_core.Jitbull.analyzer}. [params] must match
    the server's for remote==local equality. *)
val analyzer :
  ?params:Jitbull_core.Comparator.params -> t -> Jitbull_jit.Engine.analyzer

(** An engine configuration answering go/no-go remotely: {!analyzer}
    plus a policy cache keyed on {!generation} (registered for eager
    flush on pushes). *)
val engine_config :
  ?params:Jitbull_core.Comparator.params ->
  t ->
  vulns:Jitbull_passes.Vuln_config.t ->
  unit ->
  Jitbull_jit.Engine.config

(** Stop the threads (interrupting a long poll in flight), fail pending
    submissions, close the connections. *)
val close : t -> unit
