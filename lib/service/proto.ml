module Jsonx = Jitbull_obs.Jsonx
module Engine = Jitbull_jit.Engine

type verdict = [ `Allow | `Disable of string list | `Forbid ]

type verdict_req = {
  vr_id : int;
  vr_func : string;
  vr_bytecode_hash : int;
  vr_feedback_hash : int;
  vr_dna : string;
}

type verdict_resp = {
  vs_id : int;
  vs_verdict : verdict;
  vs_passes : string list;
  vs_matched : (string * string list) list;
  vs_generation : int;
  vs_cached : bool;
}

let verdict_name = function
  | `Allow -> "allow"
  | `Disable _ -> "disable"
  | `Forbid -> "forbid"

let verdict_of_decision = function
  | Engine.Allow -> `Allow
  | Engine.Disable_passes ps -> `Disable ps
  | Engine.Forbid_jit -> `Forbid

let decision_of_verdict = function
  | `Allow -> Engine.Allow
  | `Disable ps -> Engine.Disable_passes ps
  | `Forbid -> Engine.Forbid_jit

let strings l = Jsonx.List (List.map (fun s -> Jsonx.String s) l)

let string_list j = List.map Jsonx.to_str (Jsonx.to_list_exn j)

let req_to_json r =
  Jsonx.Assoc
    [
      ("id", Jsonx.Int r.vr_id);
      ("func", Jsonx.String r.vr_func);
      ("bytecode_hash", Jsonx.Int r.vr_bytecode_hash);
      ("feedback_hash", Jsonx.Int r.vr_feedback_hash);
      ("dna", Jsonx.String r.vr_dna);
    ]

let req_of_json j =
  {
    vr_id = Jsonx.to_int (Jsonx.member "id" j);
    vr_func = Jsonx.to_str (Jsonx.member "func" j);
    vr_bytecode_hash = Jsonx.to_int (Jsonx.member "bytecode_hash" j);
    vr_feedback_hash = Jsonx.to_int (Jsonx.member "feedback_hash" j);
    vr_dna = Jsonx.to_str (Jsonx.member "dna" j);
  }

let resp_to_json r =
  Jsonx.Assoc
    [
      ("id", Jsonx.Int r.vs_id);
      ("verdict", Jsonx.String (verdict_name r.vs_verdict));
      ("passes", strings r.vs_passes);
      ( "matched",
        Jsonx.Assoc (List.map (fun (cve, ps) -> (cve, strings ps)) r.vs_matched)
      );
      ("generation", Jsonx.Int r.vs_generation);
      ("cached", Jsonx.Bool r.vs_cached);
    ]

let resp_of_json j =
  let passes = string_list (Jsonx.member "passes" j) in
  let verdict =
    match Jsonx.to_str (Jsonx.member "verdict" j) with
    | "allow" -> `Allow
    | "disable" -> `Disable passes
    | "forbid" -> `Forbid
    | s -> raise (Jsonx.Parse_error ("unknown verdict: " ^ s))
  in
  {
    vs_id = Jsonx.to_int (Jsonx.member "id" j);
    vs_verdict = verdict;
    vs_passes = passes;
    vs_matched =
      (match Jsonx.member "matched" j with
      | Jsonx.Assoc kvs -> List.map (fun (cve, ps) -> (cve, string_list ps)) kvs
      | _ -> []);
    vs_generation = Jsonx.to_int (Jsonx.member "generation" j);
    vs_cached =
      (match Jsonx.member "cached" j with Jsonx.Bool b -> b | _ -> false);
  }

(* JSONL framing: one JSON object per line. [Jsonx.to_string] never emits
   raw newlines (control characters are escaped), so lines and values
   cannot be confused. *)

let jsonl enc items = String.concat "\n" (List.map (fun i -> Jsonx.to_string (enc i)) items)

let of_jsonl dec body =
  String.split_on_char '\n' body
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None else Some (dec (Jsonx.parse line)))

let encode_reqs = jsonl req_to_json
let decode_reqs = of_jsonl req_of_json
let encode_resps = jsonl resp_to_json
let decode_resps = of_jsonl resp_of_json

(* FNV-1a-style fold over the whole request identity — the server-side
   verdict cache key. Unlike [Hashtbl.hash] (which samples a bounded
   prefix), every byte of the DNA text contributes, so two requests
   collide only on a genuine 62-bit hash collision. (The offset basis is
   not FNV's — that constant doesn't fit OCaml's 63-bit int — but any
   large odd seed serves the same purpose.) *)
let fnv s =
  let h = ref 0x2545F4914F6CDD1D in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x100000001b3
  done;
  !h

let req_key r =
  let h = ref (fnv r.vr_dna) in
  let mix x = h := (!h lxor x) * 0x100000001b3 in
  mix (r.vr_bytecode_hash land max_int);
  mix (r.vr_feedback_hash land max_int);
  !h land max_int

(* The outer server cache key: the raw, still-unparsed JSONL request
   line. A hit answers with a pre-rendered response line, skipping JSON
   parse and render entirely — under fleet load, where many engines
   compile the same functions, this is most requests. *)
let line_key line = fnv line land max_int
