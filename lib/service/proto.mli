(** The jitbulld wire protocol: JSONL verdict batches and the
    JSON codecs shared by server ({!Service}) and client ({!Client}).

    A [/verdict] POST body is one JSON object per line, each a
    {!verdict_req}; the response body mirrors it with one
    {!verdict_resp} per request, matched by [id]. DNA travels as the
    text of {!Jitbull_core.Dna.to_sexpr} — the client extracted it from
    the compile trace anyway, and the sexpr form is the DB's canonical
    serialization. *)

type verdict = [ `Allow | `Disable of string list | `Forbid ]

type verdict_req = {
  vr_id : int;  (** caller-chosen; echoed in the response *)
  vr_func : string;
  vr_bytecode_hash : int;
  vr_feedback_hash : int;
  vr_dna : string;  (** [Dna.to_sexpr] text *)
}

type verdict_resp = {
  vs_id : int;
  vs_verdict : verdict;
  vs_passes : string list;  (** dangerous-pass union, pipeline order *)
  vs_matched : (string * string list) list;
      (** CVE → matching passes; empty on a server cache hit (the cache
          stores decisions, not evidence) *)
  vs_generation : int;  (** DB generation the verdict is valid against *)
  vs_cached : bool;  (** answered from the server's verdict cache *)
}

val verdict_name : verdict -> string

(** JSON string-list helper shared with the service's ad-hoc bodies. *)
val strings : string list -> Jitbull_obs.Jsonx.t
val verdict_of_decision : Jitbull_jit.Engine.decision -> verdict
val decision_of_verdict : verdict -> Jitbull_jit.Engine.decision

val req_to_json : verdict_req -> Jitbull_obs.Jsonx.t
val req_of_json : Jitbull_obs.Jsonx.t -> verdict_req
val resp_to_json : verdict_resp -> Jitbull_obs.Jsonx.t
val resp_of_json : Jitbull_obs.Jsonx.t -> verdict_resp

(** JSONL: one object per line; decoders skip blank lines and raise
    [Jsonx.Parse_error] / [Sexpr.Decode_error] on malformed input. *)

val encode_reqs : verdict_req list -> string
val decode_reqs : string -> verdict_req list
val encode_resps : verdict_resp list -> string
val decode_resps : string -> verdict_resp list

(** FNV-1a over the full request identity (every DNA byte + both
    hashes) — the server-side verdict cache key. *)
val req_key : verdict_req -> int

(** FNV-1a over a raw, unparsed JSONL request line — the server's outer
    cache key. A hit answers with a pre-rendered response line, skipping
    JSON parse and render entirely. *)
val line_key : string -> int
