module Http = Jitbull_obs.Http_export
module Obs = Jitbull_obs.Obs
module Metrics = Jitbull_obs.Metrics
module Jsonx = Jitbull_obs.Jsonx
module Audit = Jitbull_obs.Audit
module Propagate = Jitbull_obs.Propagate
module Fleet = Jitbull_obs.Fleet
module Sexpr = Jitbull_util.Sexpr
module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module Dna = Jitbull_core.Dna
module Comparator = Jitbull_core.Comparator
module Jitbull = Jitbull_core.Jitbull

(* Hottest-function tracker feeding [/warm]: per (bytecode hash,
   feedback hash), the decision count and the latest verdict with the
   generation it was decided at. [/warm] only ships cells still valid at
   the current generation — a warm entry must never outlive the verdict
   it carries. *)
type warm_cell = {
  mutable w_count : int;
  mutable w_verdict : Proto.verdict;
  mutable w_passes : string list;
  mutable w_gen : int;
}

(* Outer verdict cache: raw JSONL request line → pre-rendered response
   line (plus the fields needed to keep the warm tracker counting).
   A hit skips JSON parse, DNA parse, the DB query AND response
   rendering — under fleet load, where many engines compile the same
   hot functions, this is most requests, and on the wire path it is the
   difference between per-request work that scales with the DNA size
   and work that scales with one hash of the line. Entries are valid
   only at the generation they were decided at, the same
   [store ~if_generation] discipline as the policy cache. *)
type line_cell = {
  l_gen : int;
  l_bh : int;
  l_fh : int;
  l_verdict : Proto.verdict;
  l_passes : string list;
  l_line : string;  (** rendered response line, [vs_cached = true] *)
}

(* Outermost level: whole request body → whole pre-rendered response
   body. In the fleet regime the same hot batch recurs verbatim, and a
   hit costs one hash of the body plus the warm-tracker touches —
   per-line splitting, hashing and lookup are all skipped. Same
   generation discipline as the line cells. *)
type body_cell = {
  b_gen : int;
  b_resp : string;  (** full response body, every line [vs_cached = true] *)
  b_warm : (int * int * Proto.verdict * string list) list;
  b_lines : int;  (** batch size, for the histogram *)
}

type t = {
  db : Db.t;
  idx : Db.Sharded.t;
  params : Comparator.params;
  obs : Obs.t option;
  use_cache : bool;
      (** [false] disables all three server cache levels — the A/B
          baseline where every request pays parse + query *)
  cache : Engine.Policy_cache.t;
      (** inner verdict cache keyed by {!Proto.req_key} (full request
          identity) — catches re-decides that miss the line cache, e.g.
          the same compile arriving with a different request id *)
  line_mu : Mutex.t;
  lines : (int, line_cell) Hashtbl.t;  (** keyed by {!Proto.line_key} *)
  max_lines : int;
  body_mu : Mutex.t;
  bodies : (int, body_cell) Hashtbl.t;
      (** keyed by {!Proto.line_key} of the whole body *)
  max_bodies : int;
  warm_mu : Mutex.t;
  warm : (int * int, warm_cell) Hashtbl.t;
  fleet : Fleet.t;  (** per-client telemetry pushed via [POST /push] *)
  subscribe_poll_s : float;
  mutable server : Http.Server.t option;
}

let db t = t.db
let sharded t = t.idx
let fleet t = t.fleet

let port t =
  match t.server with Some s -> Http.Server.port s | None -> invalid_arg "port"

let server t =
  match t.server with Some s -> s | None -> invalid_arg "server"

(* ---- verdict path ---- *)

let json_error status msg =
  Http.respond ~status ~content_type:"application/json"
    (Jsonx.to_string (Jsonx.Assoc [ ("error", Jsonx.String msg) ]))

(* Every served decision is audited (when obs is installed) with the
   same evidence shape as a local one, plus fleet provenance: the
   requesting client id and the remote parent span that asked. *)
let audit_decision t ?client_id ?remote_parent ~(req : Proto.verdict_req)
    ~verdict ~matches ~prefilter_candidates ~prefilter_hits ~db_generation
    ~source ~duration () =
  match t.obs with
  | None -> ()
  | Some o ->
    ignore
      (Audit.append (Obs.audit o) ?client_id ?remote_parent
         ~func_name:req.Proto.vr_func ~func_index:req.Proto.vr_id
         ~bytecode_hash:req.Proto.vr_bytecode_hash
         ~feedback_hash:req.Proto.vr_feedback_hash
         ~verdict:(Jitbull.audit_verdict verdict)
         ~matches ~thr:t.params.Comparator.thr ~ratio:t.params.Comparator.ratio
         ~prefilter_candidates ~prefilter_hits ~db_generation
         ~db_size:(Db.size t.db) ~source ~duration ())

let decide_no_warm t ?client_id ?remote_parent (req : Proto.verdict_req) :
    Proto.verdict_resp =
  let key = Proto.req_key req in
  match if t.use_cache then Engine.Policy_cache.lookup t.cache key else None with
  | Some d ->
    let gen = Engine.Policy_cache.current_generation t.cache in
    let verdict = Proto.verdict_of_decision d in
    let resp =
      {
        Proto.vs_id = req.Proto.vr_id;
        vs_verdict = verdict;
        vs_passes = (match verdict with `Disable ps -> ps | _ -> []);
        vs_matched = [];
        vs_generation = gen;
        vs_cached = true;
      }
    in
    audit_decision t ?client_id ?remote_parent ~req ~verdict ~matches:[]
      ~prefilter_candidates:0 ~prefilter_hits:0 ~db_generation:gen
      ~source:Audit.Cache_hit ~duration:0.0 ();
    resp
  | None ->
    let t0 = Obs.now t.obs in
    let dna = Dna.of_sexpr (Sexpr.of_string req.Proto.vr_dna) in
    let q = Db.Sharded.matching_detailed ~params:t.params ?obs:t.obs t.idx dna in
    let matched = Db.drop_details q.Db.q_matches in
    let dangerous, verdict = Jitbull.verdict_of_matches matched in
    if t.use_cache then
      Engine.Policy_cache.store ~if_generation:q.Db.q_generation t.cache key
        (Proto.decision_of_verdict verdict);
    audit_decision t ?client_id ?remote_parent ~req ~verdict
      ~matches:(Jitbull.audit_matches q.Db.q_matches)
      ~prefilter_candidates:q.Db.q_prefilter_candidates
      ~prefilter_hits:q.Db.q_prefilter_hits ~db_generation:q.Db.q_generation
      ~source:Audit.Fresh
      ~duration:(Float.max 0.0 (Obs.now t.obs -. t0))
      ();
    {
      Proto.vs_id = req.Proto.vr_id;
      vs_verdict = verdict;
      vs_passes = dangerous;
      vs_matched = matched;
      vs_generation = q.Db.q_generation;
      vs_cached = false;
    }

let touch_warm t ~bh ~fh ~verdict ~passes ~gen =
  let key = (bh, fh) in
  Mutex.lock t.warm_mu;
  (match Hashtbl.find_opt t.warm key with
  | Some c ->
    c.w_count <- c.w_count + 1;
    if gen >= c.w_gen then begin
      c.w_verdict <- verdict;
      c.w_passes <- passes;
      c.w_gen <- gen
    end
  | None ->
    Hashtbl.add t.warm key
      { w_count = 1; w_verdict = verdict; w_passes = passes; w_gen = gen });
  Mutex.unlock t.warm_mu

let decide t ?client_id ?remote_parent req =
  let resp = decide_no_warm t ?client_id ?remote_parent req in
  touch_warm t ~bh:req.Proto.vr_bytecode_hash ~fh:req.Proto.vr_feedback_hash
    ~verdict:resp.Proto.vs_verdict ~passes:resp.Proto.vs_passes
    ~gen:resp.Proto.vs_generation;
  resp

(* line cache: lookups are valid only at the current generation, so a
   DB mutation implicitly drops every stored line *)
let line_find t key =
  if not t.use_cache then None
  else begin
  Mutex.lock t.line_mu;
  let r =
    match Hashtbl.find_opt t.lines key with
    | Some c when c.l_gen = Db.generation t.db -> Some c
    | _ -> None
  in
  Mutex.unlock t.line_mu;
  r
  end

let line_store t key cell =
  if t.use_cache then begin
    Mutex.lock t.line_mu;
    if Hashtbl.length t.lines >= t.max_lines then Hashtbl.reset t.lines;
    Hashtbl.replace t.lines key cell;
    Mutex.unlock t.line_mu
  end

let body_find t key =
  if not t.use_cache then None
  else begin
    Mutex.lock t.body_mu;
    let r =
      match Hashtbl.find_opt t.bodies key with
      | Some c when c.b_gen = Db.generation t.db -> Some c
      | _ -> None
    in
    Mutex.unlock t.body_mu;
    r
  end

let body_store t key cell =
  if t.use_cache then begin
    Mutex.lock t.body_mu;
    if Hashtbl.length t.bodies >= t.max_bodies then Hashtbl.reset t.bodies;
    Hashtbl.replace t.bodies key cell;
    Mutex.unlock t.body_mu
  end

let verdict_body t ?client_id ?remote_parent body =
  let bkey = Proto.line_key body in
  match body_find t bkey with
  | Some c ->
    (* whole-batch hit: one body hash bought the entire response *)
    Obs.add t.obs "service.cache_hits" c.b_lines;
    Obs.observe t.obs ~bounds:Metrics.size_bounds "service.batch_size"
      (float_of_int c.b_lines);
    List.iter
      (fun (bh, fh, verdict, passes) ->
        touch_warm t ~bh ~fh ~verdict ~passes ~gen:c.b_gen)
      c.b_warm;
    Http.respond ~content_type:"application/jsonl" c.b_resp
  | None -> (
    let lines =
      String.split_on_char '\n' body
      |> List.filter_map (fun l ->
             let l = String.trim l in
             if l = "" then None else Some l)
    in
    if lines = [] then json_error 400 "empty batch"
    else begin
      Obs.observe t.obs ~bounds:Metrics.size_bounds "service.batch_size"
        (float_of_int (List.length lines));
      (* [answer] yields the line to send now, the [vs_cached = true]
         rendering a repeat would get, and the warm-tracker fields with
         the generation the verdict was decided at. *)
      let answer line =
        let key = Proto.line_key line in
        match line_find t key with
        | Some c ->
          Obs.incr t.obs "service.cache_hits";
          touch_warm t ~bh:c.l_bh ~fh:c.l_fh ~verdict:c.l_verdict
            ~passes:c.l_passes ~gen:c.l_gen;
          (c.l_line, c.l_line, (c.l_bh, c.l_fh, c.l_verdict, c.l_passes, c.l_gen))
        | None ->
          Obs.incr t.obs "service.cache_misses";
          let req = Proto.req_of_json (Jsonx.parse line) in
          let resp = decide t ?client_id ?remote_parent req in
          let cached_line =
            Jsonx.to_string
              (Proto.resp_to_json { resp with Proto.vs_cached = true })
          in
          (* store only a verdict decided at (and still valid at) one
             generation; the stored line answers repeats as cached *)
          if resp.Proto.vs_generation = Db.generation t.db then
            line_store t key
              {
                l_gen = resp.Proto.vs_generation;
                l_bh = req.Proto.vr_bytecode_hash;
                l_fh = req.Proto.vr_feedback_hash;
                l_verdict = resp.Proto.vs_verdict;
                l_passes = resp.Proto.vs_passes;
                l_line = cached_line;
              };
          ( Jsonx.to_string (Proto.resp_to_json resp),
            cached_line,
            ( req.Proto.vr_bytecode_hash,
              req.Proto.vr_feedback_hash,
              resp.Proto.vs_verdict,
              resp.Proto.vs_passes,
              resp.Proto.vs_generation ) )
      in
      match List.map answer lines with
      | answers ->
        let gen = Db.generation t.db in
        if List.for_all (fun (_, _, (_, _, _, _, g)) -> g = gen) answers then
          body_store t bkey
            {
              b_gen = gen;
              b_resp =
                String.concat "\n" (List.map (fun (_, c, _) -> c) answers);
              b_warm =
                List.map
                  (fun (_, _, (bh, fh, v, ps, _)) -> (bh, fh, v, ps))
                  answers;
              b_lines = List.length answers;
            };
        Http.respond ~content_type:"application/jsonl"
          (String.concat "\n" (List.map (fun (o, _, _) -> o) answers))
      | exception Jsonx.Parse_error msg -> json_error 400 ("bad request: " ^ msg)
      | exception Sexpr.Decode_error msg -> json_error 400 ("bad dna: " ^ msg)
    end)

(* One "service.verdict" span per HTTP request, parented — via the
   traceparent header — on the client-side span that issued the batch:
   merging this process's trace file with the engine's yields one
   connected chain from the engine's tier_up_request through here.
   [Obs.record_span] synthesizes the span without touching the serving
   thread's span stack, so concurrent connection threads can't
   mis-parent each other. *)
let verdict_response t ?ctx ?client body =
  let t0 = Obs.now t.obs in
  let remote_parent = Option.map (fun c -> c.Propagate.parent_id) ctx in
  let resp = verdict_body t ?client_id:client ?remote_parent body in
  (if resp.Http.rs_status = 200 then
     let fields =
       (match client with
       | Some c -> [ ("client", Jsonx.String c) ]
       | None -> [])
       @
       match ctx with
       | Some c -> [ ("trace_id", Jsonx.String c.Propagate.trace_id) ]
       | None -> []
     in
     Obs.record_span t.obs ~fields ?parent:remote_parent ~ts:t0
       ~dur:(Float.max 0.0 (Obs.now t.obs -. t0))
       "service.verdict");
  resp

(* ---- subscribe / delta / warm / gen ---- *)

let gen_json g = Jsonx.to_string (Jsonx.Assoc [ ("generation", Jsonx.Int g) ])

(* Long poll: hold the request until the DB generation exceeds [g] or
   [timeout_ms] expires, then answer with the current generation either
   way. OCaml's [Condition] has no timed wait, so this sleep-polls at
   [subscribe_poll_s] — pushes arrive within one poll tick, which is
   well under any HTTP round-trip. Each waiting subscriber parks its
   connection thread; clients run one subscription per process. *)
let subscribe_response t query =
  match
    ( Http.parse_count ~max_value:max_int "gen" query ~default:0,
      Http.parse_count ~max_value:300_000 "timeout_ms" query ~default:25_000 )
  with
  | Error msg, _ | _, Error msg -> Http.bad_request msg
  | Ok g, Ok timeout_ms ->
    let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.) in
    let rec wait () =
      let cur = Db.generation t.db in
      if cur > g then begin
        Obs.incr t.obs "service.gen_pushes_total";
        cur
      end
      else if Unix.gettimeofday () >= deadline then cur
      else begin
        Unix.sleepf t.subscribe_poll_s;
        wait ()
      end
    in
    Http.respond ~content_type:"application/json" (gen_json (wait ()))

let delta_response t query =
  match Http.parse_count ~max_value:max_int "gen" query ~default:0 with
  | Error msg -> Http.bad_request msg
  | Ok g ->
    let gen, sync = Db.delta_since t.db g in
    let mode, entries =
      match sync with
      | Db.Append es -> ("append", es)
      | Db.Resync es -> ("resync", es)
    in
    Http.respond ~content_type:"application/json"
      (Jsonx.to_string
         (Jsonx.Assoc
            [
              ("generation", Jsonx.Int gen);
              ("mode", Jsonx.String mode);
              ( "entries",
                Jsonx.List
                  (List.map
                     (fun e ->
                       Jsonx.String (Sexpr.to_string (Db.entry_to_sexpr e)))
                     entries) );
            ]))

let warm_response t query =
  match Http.parse_count "n" query ~default:32 with
  | Error msg -> Http.bad_request msg
  | Ok n ->
    let gen = Db.generation t.db in
    Mutex.lock t.warm_mu;
    let cells =
      Hashtbl.fold
        (fun (bh, fh) c acc ->
          if c.w_gen = gen then (bh, fh, c.w_count, c.w_verdict, c.w_passes) :: acc
          else acc)
        t.warm []
    in
    Mutex.unlock t.warm_mu;
    let top =
      List.sort (fun (_, _, a, _, _) (_, _, b, _, _) -> compare b a) cells
      |> List.filteri (fun i _ -> i < n)
    in
    Http.respond ~content_type:"application/json"
      (Jsonx.to_string
         (Jsonx.Assoc
            [
              ("generation", Jsonx.Int gen);
              ( "entries",
                Jsonx.List
                  (List.map
                     (fun (bh, fh, count, verdict, passes) ->
                       Jsonx.Assoc
                         [
                           ("bytecode_hash", Jsonx.Int bh);
                           ("feedback_hash", Jsonx.Int fh);
                           ("count", Jsonx.Int count);
                           ("verdict", Jsonx.String (Proto.verdict_name verdict));
                           ("passes", Proto.strings passes);
                         ])
                     top) );
            ]))

(* ---- mutation (DB update + shard refresh; subscribers observe the
   generation bump on their next poll tick) ---- *)

let install t entry =
  Db.add t.db entry;
  Db.Sharded.refresh t.idx

let remove_cve t cve =
  Db.remove_cve t.db cve;
  Db.Sharded.refresh t.idx

let install_response t body =
  match Db.entry_of_sexpr (Sexpr.of_string body) with
  | exception Sexpr.Decode_error msg -> json_error 400 ("bad entry: " ^ msg)
  | entry ->
    install t entry;
    Http.respond ~content_type:"application/json" (gen_json (Db.generation t.db))

let remove_response t query =
  match List.assoc_opt "cve" query with
  | None | Some "" -> Http.bad_request "cve: required"
  | Some cve ->
    remove_cve t cve;
    Http.respond ~content_type:"application/json" (gen_json (Db.generation t.db))

(* ---- fleet telemetry (POST /push, GET /fleet) ---- *)

let push_response t body =
  match Fleet.decode_push body with
  | Error msg -> json_error 400 ("bad push: " ^ msg)
  | Ok (s, deltas) ->
    Fleet.apply t.fleet s ~deltas;
    Obs.incr t.obs "service.pushes_total";
    Obs.add t.obs "service.push_delta_records" (List.length deltas);
    Http.respond ~content_type:"application/json"
      (Jsonx.to_string
         (Jsonx.Assoc
            [
              ("ok", Jsonx.Bool true);
              ("clients", Jsonx.Int (List.length (Fleet.clients t.fleet)));
            ]))

let fleet_response t query =
  match List.assoc_opt "format" query with
  | Some "html" ->
    Http.respond ~content_type:"text/html; charset=utf-8"
      (Fleet.render_html t.fleet)
  | Some "json" ->
    Http.respond ~content_type:"application/json"
      (Jsonx.to_string (Fleet.to_json t.fleet))
  | _ ->
    Http.respond ~content_type:"text/plain; version=0.0.4"
      (Fleet.render_prometheus t.fleet)

(* ---- routing ---- *)

let handle t (req : Http.request) =
  let count ep =
    Obs.incr t.obs "service.requests_total";
    Obs.incr t.obs ("service.requests." ^ ep)
  in
  (* A present-but-malformed trace context is a client error on any
     route — hostile header values must not silently drop provenance. *)
  match
    match List.assoc_opt Propagate.header_name req.Http.rq_headers with
    | None -> Ok None
    | Some v -> Result.map Option.some (Propagate.decode v)
  with
  | Error msg -> json_error 400 msg
  | Ok ctx -> (
    let client = List.assoc_opt "x-jitbull-client" req.Http.rq_headers in
    match (req.Http.rq_path, req.Http.rq_meth) with
    | "/verdict", "POST" ->
      count "verdict";
      verdict_response t ?ctx ?client req.Http.rq_body
    | "/verdict", _ -> json_error 405 "POST required"
    | "/push", "POST" ->
      count "push";
      push_response t req.Http.rq_body
    | "/push", _ -> json_error 405 "POST required"
    | "/fleet", _ ->
      count "fleet";
      fleet_response t req.Http.rq_query
    | "/subscribe", _ ->
      count "subscribe";
      subscribe_response t req.Http.rq_query
    | "/delta", _ ->
      count "delta";
      delta_response t req.Http.rq_query
    | "/warm", _ ->
      count "warm";
      warm_response t req.Http.rq_query
    | "/gen", _ ->
      count "gen";
      Http.respond ~content_type:"application/json"
        (gen_json (Db.generation t.db))
    | "/install", "POST" ->
      count "install";
      install_response t req.Http.rq_body
    | "/remove", "POST" ->
      count "remove";
      remove_response t req.Http.rq_query
    | _ -> (
      match t.obs with
      | Some obs -> (
        match Http.obs_routes ~obs req with
        | Some resp ->
          count
            (String.sub req.Http.rq_path 1 (String.length req.Http.rq_path - 1));
          resp
        | None -> Http.not_found ())
      | None -> Http.not_found ()))

let create ?(params = Comparator.default_params) ?(shards = 4) ?(workers = 4)
    ?obs ?(subscribe_poll_s = 0.005) ?(server_cache = true) ~db ~port () =
  let t =
    {
      db;
      idx = Db.Sharded.create ~shards db;
      params;
      obs;
      use_cache = server_cache;
      cache =
        Engine.Policy_cache.create ~max_entries:65536
          ~generation:(fun () -> Db.generation db)
          ();
      line_mu = Mutex.create ();
      lines = Hashtbl.create 1024;
      max_lines = 65536;
      body_mu = Mutex.create ();
      bodies = Hashtbl.create 1024;
      max_bodies = 16384;
      warm_mu = Mutex.create ();
      warm = Hashtbl.create 256;
      fleet = Fleet.create ();
      subscribe_poll_s;
      server = None;
    }
  in
  let server =
    Http.Server.start ~workers ~handler:(fun req -> handle t req) ~port ()
  in
  t.server <- Some server;
  t

let stop t = match t.server with Some s -> Http.Server.stop s | None -> ()
