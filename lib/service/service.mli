(** The jitbulld server core: one DNA database served to a fleet of
    engine clients over the keep-alive HTTP layer
    ({!Jitbull_obs.Http_export.Server}).

    Endpoints:

    - [POST /verdict] — JSONL batch of {!Proto.verdict_req}, answered
      with one {!Proto.verdict_resp} per line. Repeat requests hit a
      three-level server-side verdict cache: the outermost level maps
      the raw request body to the whole pre-rendered response (a hit
      costs one hash of the body); the middle level maps each unparsed
      request line ({!Proto.line_key}) to a pre-rendered response
      line — a hit skips JSON parse, DNA parse, query and response
      rendering; and the inner level maps the request identity
      ({!Proto.req_key}) to a decision. All three are invalidated by
      DB-generation moves exactly like the engine's policy cache.
      Fresh requests run the sharded scatter/gather query
      ({!Jitbull_core.Db.Sharded}) and the shared go/no-go rule
      ({!Jitbull_core.Jitbull.verdict_of_matches}), so a remote verdict
      structurally equals the in-process analyzer's at the same
      generation.
    - [GET /subscribe?gen=G&timeout_ms=T] — long poll: answers
      [{"generation": N}] as soon as the DB generation exceeds [G] (or
      at the timeout, with the unchanged generation). Push invalidation
      for remote policy caches.
    - [GET /delta?gen=G] — catch-up payload for a replica at [G]:
      [mode] "append" with the missing entries (as
      {!Jitbull_core.Db.entry_to_sexpr} text), or "resync" with the
      full list after a removal.
    - [GET /warm?n=K] — the top-K hottest (bytecode hash, feedback
      hash, verdict) triples by decision count, restricted to verdicts
      still valid at the current generation.
    - [GET /gen] — current generation. [POST /install] (entry sexpr
      body) / [POST /remove?cve=C] — DB mutation over the wire.
    - [POST /push] — fleet telemetry: a cumulative snapshot + audit
      delta from one engine client ({!Jitbull_obs.Fleet} framing).
      [GET /fleet] — the per-client-labeled aggregates as Prometheus
      text (default), an HTML dashboard ([?format=html]), or JSON
      ([?format=json]).
    - With [obs]: the observability routes ([/metrics], [/healthz], …)
      mounted behind the service's own.

    {b Trace propagation.} Requests may carry a W3C-traceparent-style
    context header plus an [x-jitbull-client] label
    ({!Jitbull_obs.Propagate}); [/verdict] then records its
    "service.verdict" span parented on the remote client span, and
    server-side audit records carry the client id and remote parent —
    merging the two processes' trace files reconstructs a tier-up
    end-to-end. A present-but-malformed header is a 400 on any route.

    Metrics (via [obs]): [service.requests_total] and per-endpoint
    [service.requests.<endpoint>] counters,
    [service.batch_size] histogram, [service.cache_hits] /
    [service.cache_misses] (per request line, body- and line-cache hits
    combined), [service.gen_pushes_total],
    per-shard [service.shard_lookup.shard<i>.seconds] histograms. *)

type t

(** [create ~db ~port ()] builds the sharded index over [db] (default 4
    shards), starts [workers] (default 4) server domains on
    127.0.0.1:[port] ([0] picks a free one) and serves until {!stop}.
    [params] are the comparator thresholds verdicts are decided with.
    Each accepted connection is served on its own thread, so [workers]
    sizes CPU parallelism, not the connection limit — long-poll
    subscribers park a thread each without starving verdict traffic.
    [server_cache:false] disables all three verdict cache levels: the
    A/B baseline where every request pays full parse + query. *)
val create :
  ?params:Jitbull_core.Comparator.params ->
  ?shards:int ->
  ?workers:int ->
  ?obs:Jitbull_obs.Obs.t ->
  ?subscribe_poll_s:float ->
  ?server_cache:bool ->
  db:Jitbull_core.Db.t ->
  port:int ->
  unit ->
  t

val port : t -> int
val db : t -> Jitbull_core.Db.t
val sharded : t -> Jitbull_core.Db.Sharded.t
val server : t -> Jitbull_obs.Http_export.Server.t

(** The fleet-telemetry aggregator behind [/push] and [/fleet]. *)
val fleet : t -> Jitbull_obs.Fleet.t

(** In-process mutation: DB update + shard refresh. Subscribers observe
    the generation bump on their next poll tick. *)
val install : t -> Jitbull_core.Db.entry -> unit

val remove_cve : t -> string -> unit

(** One verdict, computed exactly as [POST /verdict] would (cache,
    sharded query, warm tracking) — exposed for tests and the
    remote==local oracle. [client_id]/[remote_parent] stamp fleet
    provenance into the audit record, as the wire path does. *)
val decide :
  t -> ?client_id:string -> ?remote_parent:int -> Proto.verdict_req ->
  Proto.verdict_resp

val stop : t -> unit
