type id = int

(* One mutex guards every table below. Helper domains intern sub-chain
   keys concurrently during background Δ extraction; the sections are a
   few hash operations long, so an uncontended lock costs nanoseconds and
   a contended one still beats re-hashing strings. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

(* id -> string, growable array *)
let names = ref (Array.make 1024 "")
let len = ref 0

let by_string : (string, id) Hashtbl.t = Hashtbl.create 1024

(* composite caches: constituent ids -> composite id *)
let by_pair : (id * id, id) Hashtbl.t = Hashtbl.create 1024
let by_triple : (id * id * id, id) Hashtbl.t = Hashtbl.create 1024
let by_rooted : (id, id) Hashtbl.t = Hashtbl.create 64

let size () = locked (fun () -> !len)

let to_string_unlocked id =
  if id < 0 || id >= !len then
    invalid_arg (Printf.sprintf "Intern.to_string: unknown id %d" id)
  else !names.(id)

let to_string id = locked (fun () -> to_string_unlocked id)

let intern_unlocked s =
  match Hashtbl.find_opt by_string s with
  | Some id -> id
  | None ->
    let id = !len in
    if id = Array.length !names then begin
      let bigger = Array.make (2 * id) "" in
      Array.blit !names 0 bigger 0 id;
      names := bigger
    end;
    !names.(id) <- s;
    incr len;
    Hashtbl.add by_string s id;
    id

let intern s = locked (fun () -> intern_unlocked s)

let pair a b =
  locked (fun () ->
      match Hashtbl.find_opt by_pair (a, b) with
      | Some id -> id
      | None ->
        let id = intern_unlocked (to_string_unlocked a ^ "->" ^ to_string_unlocked b) in
        Hashtbl.add by_pair (a, b) id;
        id)

let triple a b c =
  locked (fun () ->
      match Hashtbl.find_opt by_triple (a, b, c) with
      | Some id -> id
      | None ->
        let id =
          intern_unlocked
            (to_string_unlocked a ^ "->" ^ to_string_unlocked b ^ "->"
           ^ to_string_unlocked c)
        in
        Hashtbl.add by_triple (a, b, c) id;
        id)

let rooted a =
  locked (fun () ->
      match Hashtbl.find_opt by_rooted a with
      | Some id -> id
      | None ->
        let id = intern_unlocked ("^" ^ to_string_unlocked a) in
        Hashtbl.add by_rooted a id;
        id)
