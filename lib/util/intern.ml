type id = int

(* id -> string, growable array *)
let names = ref (Array.make 1024 "")
let len = ref 0

let by_string : (string, id) Hashtbl.t = Hashtbl.create 1024

(* composite caches: constituent ids -> composite id *)
let by_pair : (id * id, id) Hashtbl.t = Hashtbl.create 1024
let by_triple : (id * id * id, id) Hashtbl.t = Hashtbl.create 1024
let by_rooted : (id, id) Hashtbl.t = Hashtbl.create 64

let size () = !len

let to_string id =
  if id < 0 || id >= !len then
    invalid_arg (Printf.sprintf "Intern.to_string: unknown id %d" id)
  else !names.(id)

let intern s =
  match Hashtbl.find_opt by_string s with
  | Some id -> id
  | None ->
    let id = !len in
    if id = Array.length !names then begin
      let bigger = Array.make (2 * id) "" in
      Array.blit !names 0 bigger 0 id;
      names := bigger
    end;
    !names.(id) <- s;
    incr len;
    Hashtbl.add by_string s id;
    id

let pair a b =
  match Hashtbl.find_opt by_pair (a, b) with
  | Some id -> id
  | None ->
    let id = intern (to_string a ^ "->" ^ to_string b) in
    Hashtbl.add by_pair (a, b) id;
    id

let triple a b c =
  match Hashtbl.find_opt by_triple (a, b, c) with
  | Some id -> id
  | None ->
    let id = intern (to_string a ^ "->" ^ to_string b ^ "->" ^ to_string c) in
    Hashtbl.add by_triple (a, b, c) id;
    id

let rooted a =
  match Hashtbl.find_opt by_rooted a with
  | Some id -> id
  | None ->
    let id = intern ("^" ^ to_string a) in
    Hashtbl.add by_rooted a id;
    id
