(** Global string interner for the Δ machinery's hot path.

    Sub-chain keys ("a->b->c"), opcodes and pass names are compared and
    hashed millions of times per benchmark run; interning maps each
    distinct string to a small integer id exactly once, so multiset
    tables become [(int, int) Hashtbl.t] and every subsequent lookup
    hashes a machine word instead of re-hashing the string.

    Composite entry points ([pair]/[triple]/[rooted]) intern a sub-chain
    from the ids of its constituent opcodes without building the
    ["a->b->c"] string at all on the hit path — the string is only
    materialized the first time a given composite is seen (and is then
    registered, so [intern "a->b->c"] later returns the same id; ids are
    canonical per logical key however they were produced).

    The table is global and append-only: ids are stable for the lifetime
    of the process, which is exactly the scope of the in-memory DNA
    database (the on-disk format stays string-keyed). Every entry point is
    guarded by one internal mutex, so helper domains running background Δ
    extraction may intern concurrently with the main thread. *)

type id = int

(** [intern s] — the canonical id of [s], allocating one on first use. *)
val intern : string -> id

(** [to_string id] — the string [id] was interned from. Raises
    [Invalid_argument] on an id never returned by this module. *)
val to_string : id -> string

(** [pair a b] — id of ["<a>-><b>"] given opcode ids [a], [b]. *)
val pair : id -> id -> id

(** [triple a b c] — id of ["<a>-><b>-><c>"]. *)
val triple : id -> id -> id -> id

(** [rooted a] — id of ["^<a>"], the root-boundary marker opcode. *)
val rooted : id -> id

(** Number of distinct interned strings (diagnostics / tests). *)
val size : unit -> int
