type t = {
  mu : Mutex.t;
  cond : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable writers_waiting : int;
}

let create () =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    readers = 0;
    writer = false;
    writers_waiting = 0;
  }

(* Readers yield to waiting writers: a reader is admitted only when no
   writer holds the lock and none is queued behind it. Combined with the
   broadcast on [write_unlock], every queued writer is overtaken by at
   most the readers already inside the critical section when it arrived,
   so writer wait time is bounded by one batch of in-flight reads. *)
let read_lock t =
  Mutex.lock t.mu;
  while t.writer || t.writers_waiting > 0 do
    Condition.wait t.cond t.mu
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mu

let read_unlock t =
  Mutex.lock t.mu;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mu

let write_lock t =
  Mutex.lock t.mu;
  t.writers_waiting <- t.writers_waiting + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.cond t.mu
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.writer <- true;
  Mutex.unlock t.mu

let write_unlock t =
  Mutex.lock t.mu;
  t.writer <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let with_read t f =
  read_lock t;
  match f () with
  | v ->
    read_unlock t;
    v
  | exception e ->
    read_unlock t;
    raise e

let with_write t f =
  write_lock t;
  match f () with
  | v ->
    write_unlock t;
    v
  | exception e ->
    write_unlock t;
    raise e
