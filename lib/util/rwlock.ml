type t = {
  mu : Mutex.t;
  cond : Condition.t;
  mutable readers : int;
  mutable writer : bool;
}

let create () =
  { mu = Mutex.create (); cond = Condition.create (); readers = 0; writer = false }

let read_lock t =
  Mutex.lock t.mu;
  while t.writer do
    Condition.wait t.cond t.mu
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mu

let read_unlock t =
  Mutex.lock t.mu;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mu

let write_lock t =
  Mutex.lock t.mu;
  while t.writer || t.readers > 0 do
    Condition.wait t.cond t.mu
  done;
  t.writer <- true;
  Mutex.unlock t.mu

let write_unlock t =
  Mutex.lock t.mu;
  t.writer <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let with_read t f =
  read_lock t;
  match f () with
  | v ->
    read_unlock t;
    v
  | exception e ->
    read_unlock t;
    raise e

let with_write t f =
  write_lock t;
  match f () with
  | v ->
    write_unlock t;
    v
  | exception e ->
    write_unlock t;
    raise e
