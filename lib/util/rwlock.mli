(** A small many-readers / one-writer lock for structures that are read
    from helper domains while the main thread occasionally mutates them
    (the DNA database during background compilation).

    Readers are admitted whenever no writer holds the lock, even while a
    writer is waiting (reader preference). That choice makes nested read
    acquisition from one thread safe — [entries] inside [matching] — at
    the cost of theoretical writer starvation, which does not arise here:
    writes are rare DB updates, reads are bounded queries. *)

type t

val create : unit -> t

val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

(** Bracketed forms; the lock is released on exceptions. *)

val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a
