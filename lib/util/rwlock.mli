(** A small many-readers / one-writer lock for structures that are read
    from helper domains while the main thread occasionally mutates them
    (the DNA database during background compilation; the verdict
    service's postings shards under fleet load).

    Writers make progress: a reader is admitted only when no writer
    holds the lock {e and none is waiting for it}, so a DB-generation
    bump is never starved by a continuous stream of verdict queries —
    the writer waits for at most the readers that were already inside
    when it queued up (a property [test/test_util.ml] stress-tests
    across domains).

    The price of that fairness is that read acquisition is {e not}
    reentrant: a thread that already holds the read side and takes it
    again can deadlock against a writer that queued in between. Callers
    keep a strict no-nesting discipline — [Db] runs its whole query
    under one read section and uses [_unlocked] internals inside. *)

type t

val create : unit -> t

val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

(** Bracketed forms; the lock is released on exceptions. *)

val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a
