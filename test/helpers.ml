(* Shared helpers for the test suite. *)

module Interp = Jitbull_interp.Interp
module Engine = Jitbull_jit.Engine
module Parser = Jitbull_frontend.Parser
module Compiler = Jitbull_bytecode.Compiler
module Vm = Jitbull_bytecode.Vm
module VC = Jitbull_passes.Vuln_config

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Output of the reference interpreter. *)
let interp_output src = (Interp.run_source src).Interp.output

(* Output of the bytecode VM (no JIT). *)
let vm_output src = Vm.run_program (Compiler.compile (Parser.parse src))

(* Output of the fully tiered engine (aggressive thresholds so even short
   tests reach Ion). *)
let jit_config =
  { Engine.default_config with Engine.baseline_threshold = 2; ion_threshold = 4 }

let jit_output ?(config = jit_config) src = fst (Engine.run_source config src)

(* Assert that all three execution tiers print the same thing. *)
let assert_tiers_agree ?(name = "tiers agree") src =
  let reference = interp_output src in
  check_string (name ^ " (vm)") reference (vm_output src);
  check_string (name ^ " (jit)") reference (jit_output src)

(* Build optimized MIR for function [idx] of [src] after warming the VM to
   collect feedback; returns the graph and the snapshot trace. *)
let optimized_mir ?(vulns = VC.none) ?(disabled = []) ~func:idx src =
  let prog = Parser.parse src in
  let bc = Compiler.compile prog in
  let vm = Vm.create bc in
  (try ignore (Vm.run vm) with _ -> ());
  let g =
    Jitbull_mir.Builder.build bc.Jitbull_bytecode.Op.funcs.(idx)
      ~feedback_row:vm.Vm.feedback.(idx)
  in
  let trace = Jitbull_passes.Pipeline.run vulns ~disabled ~verify:true g in
  (g, trace)

(* Count instructions with a given opcode name in a MIR graph. *)
let count_opcode g name =
  List.length
    (List.filter
       (fun (i : Jitbull_mir.Mir.instr) ->
         String.equal (Jitbull_mir.Mir.opcode_name i.Jitbull_mir.Mir.opcode) name)
       (Jitbull_mir.Mir.all_instructions g))

let qtest = QCheck_alcotest.to_alcotest

(* QCheck iteration counts are env-tunable: JITBULL_QCHECK_COUNT is a
   percentage applied to each site's default (100 = unchanged; nightly CI
   sets 300 for a deeper soak, a laptop smoke run can set 10). *)
let qcheck_count default =
  match Sys.getenv_opt "JITBULL_QCHECK_COUNT" with
  | None | Some "" -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some pct when pct > 0 -> max 1 (default * pct / 100)
    | _ -> default)
