let () =
  Alcotest.run "jitbull"
    [
      Test_util.suite;
      Test_frontend.suite;
      Test_runtime.suite;
      Test_interp_vm.suite;
      Test_mir.suite;
      Test_passes.suite;
      Test_lir.suite;
      Test_core.suite;
      Test_security.suite;
      Test_variants.suite;
      Test_differential.suite;
      Test_workloads.suite;
      Test_optim_ext.suite;
      Test_properties.suite;
      Test_lang_ext.suite;
      Test_extra_unit.suite;
      Test_fuzz.suite;
      Test_verify_mode.suite;
      Test_obs.suite;
      Test_audit.suite;
      Test_explain.suite;
      Test_perf.suite;
      Test_service.suite;
      Test_native.suite;
    ]
