(* The go/no-go audit trail and live export: ring/query semantics, the
   acceptance record for a VDC-matching function (CVE id, matched passes
   with EqChains against Thr/Ratio, verdict, DB generation, deciding
   domain — through both the query API and /audit?n=1), sync-vs-async
   verdict-sequence equality, trace-file reconstruction of the
   tier-up → queue-wait → compile → install chain, cache-hit provenance,
   and the loopback HTTP exporter. *)

open Helpers
module Obs = Jitbull_obs.Obs
module Audit = Jitbull_obs.Audit
module Tracer = Jitbull_obs.Tracer
module Metrics = Jitbull_obs.Metrics
module Jsonx = Jitbull_obs.Jsonx
module Http = Jitbull_obs.Http_export
module CQ = Jitbull_jit.Compile_queue
module Op = Jitbull_bytecode.Op
module Vm = Jitbull_bytecode.Vm
module Value = Jitbull_runtime.Value
module V = Jitbull_vdc.Demonstrators
module Variants = Jitbull_vdc.Variants
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let test_jobs =
  match Sys.getenv_opt "JITBULL_TEST_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 2)
  | None -> 2

let fake_clock ?(step = 0.001) () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. step;
    !t

let append_n au n =
  for i = 0 to n - 1 do
    let verdict =
      if i mod 3 = 0 then Audit.Allow else Audit.Disable [ "gvn" ]
    in
    let matches =
      if i mod 3 = 0 then []
      else
        [
          {
            Audit.cm_cve = Printf.sprintf "CVE-%d" (i mod 2);
            cm_passes =
              [
                {
                  Audit.pm_pass = "gvn";
                  pm_side = "removed";
                  pm_eq_chains = 2 + i;
                  pm_max_eq_chains = 4 + i;
                  pm_chains = [ ("boundscheck->loadelement", 1 + (i mod 2)) ];
                };
              ];
          };
        ]
    in
    ignore
      (Audit.append au
         ~func_name:(Printf.sprintf "f%d" (i mod 2))
         ~func_index:(i mod 2) ~bytecode_hash:i ~feedback_hash:(i * 7) ~verdict
         ~matches ~thr:2 ~ratio:0.5 ~prefilter_candidates:4 ~prefilter_hits:1
         ~db_generation:1 ~db_size:4 ~source:Audit.Fresh ~duration:1e-6 ())
  done

(* ---- ring, queries, JSONL, aggregate survival ---- *)

let test_ring_and_queries () =
  let au = Audit.create ~capacity:4 ~clock:(fake_clock ()) () in
  let path = Filename.temp_file "jitbull_audit" ".jsonl" in
  Audit.set_file_sink au path;
  append_n au 10;
  check_int "total counts evicted records" 10 (Audit.total au);
  let held = Audit.records au in
  check_int "ring bounded" 4 (List.length held);
  let seqs = List.map (fun (r : Audit.record) -> r.Audit.seq) held in
  Alcotest.(check (list int)) "newest four, oldest first" [ 6; 7; 8; 9 ] seqs;
  (match Audit.last au 2 with
  | [ a; b ] ->
    check_int "last is newest first" 9 a.Audit.seq;
    check_int "then the one before" 8 b.Audit.seq
  | _ -> Alcotest.fail "last 2 should return 2 records");
  check_int "by_function filters retained records" 2
    (List.length (Audit.by_function au "f0"));
  List.iter
    (fun (r : Audit.record) ->
      check_bool "by_cve matches only CVE-1" true
        (List.exists (fun m -> String.equal m.Audit.cm_cve "CVE-1") r.Audit.matches))
    (Audit.by_cve au "CVE-1");
  check_bool "by_cve finds records" true (Audit.by_cve au "CVE-1" <> []);
  (* the JSONL sink saw all 10, and each line round-trips *)
  Audit.close au;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  check_int "one line per appended record" 10 (List.length !lines);
  List.iter
    (fun line ->
      let r = Audit.record_of_json (Jsonx.parse line) in
      check_bool "round trip re-encodes identically" true
        (Jsonx.parse line = Audit.record_to_json r))
    !lines;
  Sys.remove path;
  (* cumulative aggregates survive ring eviction *)
  let text = Audit.render_prometheus au in
  let has needle =
    let nl = String.length needle and l = String.length text in
    let rec go i = i + nl <= l && (String.equal (String.sub text i nl) needle || go (i + 1)) in
    go 0
  in
  check_bool "records_total counts all appends" true (has "jitbull_audit_records_total 10");
  check_bool "allow verdicts survive eviction" true
    (has "jitbull_audit_verdicts_total{verdict=\"allow\"} 4");
  check_bool "disable verdicts survive eviction" true
    (has "jitbull_audit_verdicts_total{verdict=\"disable\"} 6")

(* ---- acceptance: the full evidence for a VDC-matching function ---- *)

let check_full_evidence ~where (r : Audit.record) cve =
  (match r.Audit.verdict with
  | Audit.Disable passes ->
    check_bool (where ^ ": gvn disabled") true (List.mem "gvn" passes)
  | _ -> Alcotest.fail (where ^ ": expected a disable verdict"));
  let m =
    match List.find_opt (fun m -> String.equal m.Audit.cm_cve cve) r.Audit.matches with
    | Some m -> m
    | None -> Alcotest.fail (where ^ ": no match naming the CVE")
  in
  let pm =
    match List.find_opt (fun p -> String.equal p.Audit.pm_pass "gvn") m.Audit.cm_passes with
    | Some p -> p
    | None -> Alcotest.fail (where ^ ": no gvn pass match")
  in
  check_bool (where ^ ": EqChains meets Thr") true (pm.Audit.pm_eq_chains >= r.Audit.thr);
  check_bool (where ^ ": EqChains meets Ratio * MaxEqChains") true
    (float_of_int pm.Audit.pm_eq_chains
    >= r.Audit.ratio *. float_of_int pm.Audit.pm_max_eq_chains);
  check_int "Thr recorded" 2 r.Audit.thr;
  check_bool "Ratio recorded" true (Float.abs (r.Audit.ratio -. 0.5) < 1e-9);
  check_bool (where ^ ": DB generation recorded") true (r.Audit.db_generation >= 1);
  check_bool (where ^ ": DB size recorded") true (r.Audit.db_size >= 1);
  check_bool (where ^ ": deciding domain recorded") true (r.Audit.domain >= 0);
  check_bool (where ^ ": fresh, not cached") true (r.Audit.source = Audit.Fresh);
  check_bool (where ^ ": prefilter hits recorded") true (r.Audit.prefilter_hits >= 1)

let test_vdc_match_full_evidence () =
  let d = V.find Jitbull_passes.Vuln_config.CVE_2019_17026 in
  let vulns = VC.make [ d.V.cve ] in
  let db = Db.create () in
  check_bool "harvest found DNA" true (Db.harvest db ~cve:d.V.name ~vulns d.V.source > 0);
  let obs = Obs.create () in
  let config = Jitbull.config ~obs ~vulns db in
  (match V.run_exploit config (Variants.apply Variants.Rename d.V.source) d.V.expected with
  | V.Neutralized -> ()
  | V.Exploited _ -> Alcotest.fail "variant should have been neutralized");
  let au = Obs.audit obs in
  (* query API: by_cve finds the decision with the full evidence *)
  let r =
    match Audit.by_cve au d.V.name with
    | r :: _ -> r
    | [] -> Alcotest.fail "no audit record names the CVE"
  in
  check_full_evidence ~where:"query API" r d.V.name;
  (* and /audit?n=1 over HTTP returns the same record as JSON *)
  let srv = Http.start ~obs ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Http.stop srv)
    (fun () ->
      let code, body = Http.fetch ~port:(Http.port srv) "/audit?n=1" in
      check_int "/audit?n=1 is 200" 200 code;
      match Jsonx.to_list_exn (Jsonx.parse body) with
      | [ j ] ->
        let newest = List.hd (Audit.last au 1) in
        check_bool "/audit?n=1 is the newest record" true
          (Audit.record_of_json j = newest);
        (* the newest record for this workload is the flagged one *)
        check_full_evidence ~where:"/audit?n=1" (Audit.record_of_json j) d.V.name
      | l -> Alcotest.failf "expected exactly one record, got %d" (List.length l))

(* ---- sync and async runs decide identically, and say so ---- *)

(* DNA self-match: harvest [tri]'s own DNA (hot top-level loop crosses
   the default ion threshold), then any engine compiling the same [tri]
   against that DB must flag it — deterministically, on any domain. *)
let self_matching_db () =
  let db = Db.create () in
  let harvest_src =
    "function tri(x) { var t = 0; for (var i = 0; i < x; i++) { t = t + i; } return t; } \
     var s = 0; for (var j = 0; j < 60; j++) { s = s + tri(10); } print(s);"
  in
  check_bool "self-harvest found DNA" true
    (Db.harvest db ~cve:"CVE-SELF" ~vulns:VC.none harvest_src > 0);
  db

let drive_src =
  "function add(a, b) { return a + b; } \
   function tri(x) { var t = 0; for (var i = 0; i < x; i++) { t = t + i; } return t; }"

let func_idx eng name =
  let funcs = (Engine.vm eng).Vm.program.Op.funcs in
  let rec go i =
    if i >= Array.length funcs then Alcotest.fail ("no function " ^ name)
    else if String.equal funcs.(i).Op.name name then i
    else go (i + 1)
  in
  go 0

let drive eng =
  let num n = Value.Number (float_of_int n) in
  let add = func_idx eng "add" and tri = func_idx eng "tri" in
  for i = 0 to 9 do
    ignore (Vm.call_function (Engine.vm eng) add [ num i; num (i + 1) ]);
    ignore (Vm.call_function (Engine.vm eng) tri [ num (i mod 5) ]);
    Engine.drain eng
  done

(* func → verdict labels in decision order, from the retained records *)
let verdict_sequences au =
  List.fold_left
    (fun acc (r : Audit.record) ->
      let cur = Option.value ~default:[] (List.assoc_opt r.Audit.func_name acc) in
      (r.Audit.func_name, cur @ [ Audit.verdict_label r.Audit.verdict ])
      :: List.remove_assoc r.Audit.func_name acc)
    [] (Audit.records au)

let engine_of ?compile_pool db obs =
  let cfg = Jitbull.config ?compile_pool ~obs ~vulns:VC.none db in
  let cfg = { cfg with Engine.baseline_threshold = 2; ion_threshold = 4 } in
  Engine.create cfg
    (Jitbull_bytecode.Compiler.compile (Jitbull_frontend.Parser.parse drive_src))

let test_sync_async_audit_agree () =
  let db = self_matching_db () in
  let obs_s = Obs.create () and obs_a = Obs.create () in
  let pool = CQ.create ~jobs:test_jobs () in
  Fun.protect
    ~finally:(fun () -> CQ.shutdown pool)
    (fun () ->
      drive (engine_of db obs_s);
      drive (engine_of ~compile_pool:pool db obs_a));
  let sync_seqs = verdict_sequences (Obs.audit obs_s) in
  let async_seqs = verdict_sequences (Obs.audit obs_a) in
  check_bool "sync run audited something" true (sync_seqs <> []);
  (* every function decided in both runs got the same verdicts, in the
     same per-function order *)
  List.iter
    (fun (func, seq) ->
      match List.assoc_opt func async_seqs with
      | Some aseq ->
        Alcotest.(check (list string)) ("verdicts for " ^ func) seq aseq
      | None -> ())
    sync_seqs;
  (* and the self-match actually flagged tri in both *)
  List.iter
    (fun seqs ->
      match List.assoc_opt "tri" seqs with
      | Some (v :: _) -> check_bool "tri flagged" true (v <> "allow")
      | _ -> Alcotest.fail "tri was not audited")
    [ sync_seqs; async_seqs ]

(* ---- the trace file reconstructs the async compile chain ---- *)

let test_trace_chain_reconstruction () =
  let db = self_matching_db () in
  let obs = Obs.create () in
  let path = Filename.temp_file "jitbull_chain" ".jsonl" in
  Obs.set_trace_file obs path;
  let pool = CQ.create ~jobs:test_jobs () in
  Fun.protect
    ~finally:(fun () -> CQ.shutdown pool)
    (fun () -> drive (engine_of ~compile_pool:pool db obs));
  Obs.close (Some obs);
  let ic = open_in path in
  let events = ref [] in
  (try
     while true do
       events := Tracer.event_of_json (Jsonx.parse (input_line ic)) :: !events
     done
   with End_of_file -> close_in ic);
  let events = List.rev !events in
  Sys.remove path;
  let named name = List.filter (fun (e : Tracer.event) -> String.equal e.Tracer.name name) events in
  let tier_ups = named "tier_up_request" in
  check_bool "tier_up_request recorded" true (tier_ups <> []);
  (* walk each anchor: the whole enqueue → install chain must hang off it *)
  let child_of name anchor =
    List.find_opt
      (fun (e : Tracer.event) -> e.Tracer.parent = Some anchor)
      (named name)
  in
  let reconstructed =
    List.filter
      (fun (t : Tracer.event) ->
        let anchor = t.Tracer.id in
        match (child_of "queue_wait" anchor, child_of "compile_task" anchor) with
        | Some qw, Some task ->
          check_bool "queue_wait is a span" true (qw.Tracer.kind = Tracer.Span);
          check_bool "queue_wait duration non-negative" true (qw.Tracer.dur >= 0.0);
          (* the Ion compile runs inside the task span on the helper *)
          let compiled =
            List.exists
              (fun (e : Tracer.event) -> e.Tracer.parent = Some task.Tracer.id)
              (named "compile_ion")
          in
          check_bool "compile_ion nested in the task" true compiled;
          (* and the safepoint install (or stale drop) closes the chain *)
          child_of "async_install" anchor <> None || child_of "stale_result" anchor <> None
        | _ -> false)
      tier_ups
  in
  check_bool "at least one full tier-up chain reconstructed" true (reconstructed <> []);
  (* helper-side spans genuinely carry the main-thread anchor as parent *)
  List.iter
    (fun (t : Tracer.event) ->
      check_bool "anchor event is a point" true (t.Tracer.kind = Tracer.Point))
    reconstructed;
  (* the queue histograms observed those waits *)
  let view = Obs.view (Some obs) in
  check_bool "queued_seconds histogram populated" true
    (match Metrics.find_histogram view "compile.queued_seconds" with
    | Some hv -> hv.Metrics.hv_count > 0
    | None -> false);
  check_bool "install latency histogram populated" true
    (match Metrics.find_histogram view "compile.install_latency_seconds" with
    | Some hv -> hv.Metrics.hv_count > 0
    | None -> false)

(* ---- cache hits carry their provenance ---- *)

let test_cache_hit_provenance () =
  let db = self_matching_db () in
  let obs = Obs.create () in
  let cfg = Jitbull.config ~obs ~vulns:VC.none db in
  let cfg = { cfg with Engine.baseline_threshold = 2; ion_threshold = 4 } in
  (* two engines share the config, hence the policy cache: the second
     run's decisions replay from it *)
  drive (Engine.create cfg (Jitbull_bytecode.Compiler.compile (Jitbull_frontend.Parser.parse drive_src)));
  drive (Engine.create cfg (Jitbull_bytecode.Compiler.compile (Jitbull_frontend.Parser.parse drive_src)));
  let au = Obs.audit obs in
  let hits =
    List.filter (fun (r : Audit.record) -> r.Audit.source = Audit.Cache_hit) (Audit.records au)
  in
  check_bool "cache hits audited" true (hits <> []);
  List.iter
    (fun (r : Audit.record) ->
      check_bool "cached record has no fresh match evidence" true (r.Audit.matches = []);
      check_bool "cached record spent no decision time" true (r.Audit.duration = 0.0);
      check_bool "cache hit still names the DB generation" true (r.Audit.db_generation >= 1))
    hits;
  (* a cached tri verdict agrees with the fresh one *)
  (match Audit.by_function au "tri" with
  | fresh :: rest ->
    check_bool "first tri decision is fresh" true (fresh.Audit.source = Audit.Fresh);
    (match List.find_opt (fun (r : Audit.record) -> r.Audit.source = Audit.Cache_hit) rest with
    | Some cached ->
      check_bool "cached verdict equals fresh verdict" true
        (Audit.verdict_label cached.Audit.verdict = Audit.verdict_label fresh.Audit.verdict)
    | None -> Alcotest.fail "no cached tri decision")
  | [] -> Alcotest.fail "tri was not audited")

(* ---- the HTTP exporter ---- *)

let test_http_endpoints () =
  let obs = Obs.create () in
  Metrics.add (Metrics.counter (Obs.metrics obs) "vm.calls") 3;
  ignore
    (Audit.append (Obs.audit obs) ~func_name:"f" ~func_index:0 ~bytecode_hash:1
       ~feedback_hash:2 ~verdict:Audit.Allow ~matches:[] ~thr:2 ~ratio:0.5
       ~prefilter_candidates:0 ~prefilter_hits:0 ~db_generation:0 ~db_size:0
       ~source:Audit.Fresh ~duration:0.0 ());
  let srv = Http.start ~obs ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Http.stop srv)
    (fun () ->
      let port = Http.port srv in
      let has hay needle =
        let nl = String.length needle and l = String.length hay in
        let rec go i = i + nl <= l && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
        go 0
      in
      let code, body = Http.fetch ~port "/metrics" in
      check_int "/metrics is 200" 200 code;
      check_bool "engine metrics exported" true (has body "vm_calls 3");
      check_bool "audit aggregates exported" true (has body "jitbull_audit_records_total 1");
      let code, body = Http.fetch ~port "/healthz" in
      check_int "healthy engine is 200" 200 code;
      check_bool "healthz reports ok" true (has body "\"status\":\"ok\"");
      (* push a health check over its threshold *)
      Metrics.set (Metrics.gauge (Obs.metrics obs) "compile.queue_depth") 65.0;
      let code, body = Http.fetch ~port "/healthz" in
      check_int "overloaded queue is 503" 503 code;
      check_bool "healthz names the failing check" true (has body "queue_depth");
      Metrics.set (Metrics.gauge (Obs.metrics obs) "compile.queue_depth") 0.0;
      let code, _ = Http.fetch ~port "/healthz" in
      check_int "recovers to 200" 200 code;
      let code, body = Http.fetch ~port "/audit?n=5" in
      check_int "/audit is 200" 200 code;
      check_int "one record so far" 1 (List.length (Jsonx.to_list_exn (Jsonx.parse body)));
      let code, _ = Http.fetch ~port "/nope" in
      check_int "unknown path is 404" 404 code);
  (* stop is idempotent and the port is released *)
  Http.stop srv;
  check_bool "stopped server refuses" true
    (match Http.fetch ~port:(Http.port srv) "/metrics" with
    | exception Unix.Unix_error _ -> true
    | _ -> false)

let suite =
  ( "audit",
    [
      Alcotest.test_case "ring, queries, JSONL, aggregates" `Quick test_ring_and_queries;
      Alcotest.test_case "VDC match: full evidence via query API and /audit" `Quick
        test_vdc_match_full_evidence;
      Alcotest.test_case "sync and async audit verdicts agree" `Quick
        test_sync_async_audit_agree;
      Alcotest.test_case "trace file reconstructs the compile chain" `Quick
        test_trace_chain_reconstruction;
      Alcotest.test_case "cache-hit provenance" `Quick test_cache_hit_provenance;
      Alcotest.test_case "HTTP exporter endpoints" `Quick test_http_endpoints;
    ] )
