(* Tests for the JITBULL core: dependency graphs (Algorithm 1), chains,
   deltas (including the paper's worked example), the comparator
   (Algorithm 2), the database, and the go/no-go policy. *)

open Helpers
module Snapshot = Jitbull_mir.Snapshot
module Depgraph = Jitbull_core.Depgraph
module Chains = Jitbull_core.Chains
module Delta = Jitbull_core.Delta
module Dna = Jitbull_core.Dna
module Comparator = Jitbull_core.Comparator
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull
module Engine = Jitbull_jit.Engine
module VC = Jitbull_passes.Vuln_config
module Sexpr = Jitbull_util.Sexpr

(* Hand-build a snapshot: (num, opcode, operands). *)
let snap entries =
  {
    Snapshot.func_name = "test";
    n_blocks = 1;
    entries =
      List.map
        (fun (num, opcode, operands) -> { Snapshot.num; opcode; operands })
        entries;
  }

let test_buildgraph_roots () =
  (* 8 boundscheck uses 2 (unbox) and 7 (initializedlength); 9 uses 8 —
     so 9 is the only root among instructions with operands *)
  let g =
    Depgraph.build
      (snap
         [
           (2, "unbox", []);
           (7, "initializedlength", []);
           (8, "boundscheck", [ 2; 7 ]);
           (9, "loadelement", [ 8 ]);
         ])
  in
  check_int "roots" 1 (List.length g.Depgraph.roots);
  check_string "root opcode" "loadelement" (List.hd g.Depgraph.roots).Depgraph.opcode;
  check_int "edges" 3 (Depgraph.edge_count g)

let test_buildgraph_operandless_excluded () =
  (* an instruction with no operands that nothing uses is not in G *)
  let g = Depgraph.build (snap [ (1, "constant", []); (2, "parameter", []) ]) in
  check_int "empty graph" 0 (Depgraph.node_count g)

let test_chains_paper_shapes () =
  let g =
    Depgraph.build
      (snap [ (1, "d", []); (2, "c", [ 1 ]); (3, "b", [ 2 ]); (4, "a", [ 3 ]) ])
  in
  let chains = Chains.extract g in
  check_int "one chain" 1 (List.length chains);
  check_string "a->b->c->d" "a->b->c->d" (Chains.chain_to_string (List.hd chains))

let test_chains_diamond () =
  (* a uses b and c; both use d: two root-to-leaf paths *)
  let g =
    Depgraph.build
      (snap [ (1, "d", []); (2, "b", [ 1 ]); (3, "c", [ 1 ]); (4, "a", [ 2; 3 ]) ])
  in
  let chains = Chains.extract g in
  check_int "two paths" 2 (List.length chains)

let test_chains_cap () =
  let g =
    Depgraph.build
      (snap [ (1, "d", []); (2, "b", [ 1 ]); (3, "c", [ 1 ]); (4, "a", [ 2; 3 ]) ])
  in
  let chains = Chains.extract ~max_chains:1 g in
  check_int "capped" 1 (List.length chains)

let test_ngrams () =
  check_bool "2-grams" true
    (Chains.ngrams 2 [ "a"; "b"; "c" ] = [ [ "a"; "b" ]; [ "b"; "c" ] ]);
  check_bool "short chain" true (Chains.ngrams 3 [ "a"; "b" ] = [ [ "a"; "b" ] ])

(* The paper's worked example: C_{i-1} = A→B→C→D, C_i = B→C→E gives
   δ⁻ = {A→B, C→D} and δ⁺ = {C→E}. *)
let test_delta_paper_example () =
  let before =
    Depgraph.build
      (snap [ (1, "d", []); (2, "c", [ 1 ]); (3, "b", [ 2 ]); (4, "a", [ 3 ]) ])
  in
  let after =
    Depgraph.build (snap [ (1, "e", []); (2, "c", [ 1 ]); (3, "b", [ 2 ]) ])
  in
  (* the paper's example is in 2-gram terms *)
  let d = Delta.compute ~n:2 before after in
  check_int "two removed subchains" 2 (Delta.total d.Delta.removed);
  check_int "one added subchain" 1 (Delta.total d.Delta.added);
  check_bool "A->B removed" true (Delta.mem_key d.Delta.removed "a->b");
  check_bool "C->D removed" true (Delta.mem_key d.Delta.removed "c->d");
  check_bool "C->E added" true (Delta.mem_key d.Delta.added "c->e")

let test_delta_empty_on_identical () =
  let g = Depgraph.build (snap [ (1, "x", []); (2, "y", [ 1 ]) ]) in
  let d = Delta.compute g g in
  check_bool "empty" true (Delta.is_empty d)

let test_delta_multiplicity () =
  (* two removed identical edges count twice *)
  let before =
    Depgraph.build
      (snap [ (1, "x", []); (2, "y", [ 1 ]); (3, "x", []); (4, "y", [ 3 ]) ])
  in
  let after = Depgraph.build (snap []) in
  let d = Delta.compute ~n:2 before after in
  check_int "multiplicity 2" 2 (Delta.total d.Delta.removed);
  check_int "single key" 1 (Hashtbl.length d.Delta.removed)

let test_delta_sexpr_roundtrip () =
  let before =
    Depgraph.build
      (snap [ (1, "d", []); (2, "c", [ 1 ]); (3, "b", [ 2 ]); (4, "a", [ 3 ]) ])
  in
  let after = Depgraph.build (snap [ (1, "e", []); (2, "c", [ 1 ]) ]) in
  let d = Delta.compute before after in
  let d' = Delta.of_sexpr (Sexpr.of_string (Sexpr.to_string (Delta.to_sexpr d))) in
  check_int "removed preserved" (Delta.total d.Delta.removed) (Delta.total d'.Delta.removed);
  check_int "added preserved" (Delta.total d.Delta.added) (Delta.total d'.Delta.added)

(* ---- comparator (Algorithm 2) ---- *)

let side_of_list = Delta.side_of_list

let params = { Comparator.thr = 2; ratio = 0.5 }

let test_comparator_threshold () =
  let a = side_of_list [ ("x->y", 1) ] in
  let b = side_of_list [ ("x->y", 1) ] in
  (* EqChains = 1 < Thr = 2 *)
  check_bool "below threshold" false (Comparator.compare_sides ~params a b);
  let a2 = side_of_list [ ("x->y", 2) ] in
  let b2 = side_of_list [ ("x->y", 2) ] in
  check_bool "at threshold" true (Comparator.compare_sides ~params a2 b2)

let test_comparator_ratio () =
  (* 2 common out of min(10, 2) = 2 → ratio 1.0: match;
     2 common out of min(10, 10) = 10 → ratio 0.2 < 0.5: no match *)
  let small = side_of_list [ ("a->b", 1); ("c->d", 1) ] in
  let big =
    side_of_list [ ("a->b", 1); ("c->d", 1); ("e->f", 4); ("g->h", 4) ]
  in
  check_bool "small vs big matches (MaxEq = small)" true
    (Comparator.compare_sides ~params small big);
  let big2 = side_of_list [ ("a->b", 1); ("c->d", 1); ("zz->ww", 8) ] in
  (* EqChains = 2 ≥ Thr but 2 < 0.5 × min(10, 10) *)
  check_bool "big vs big fails ratio" false (Comparator.compare_sides ~params big big2)

let test_comparator_min_multiplicity () =
  let a = side_of_list [ ("x->y", 5) ] in
  let b = side_of_list [ ("x->y", 2) ] in
  (* EqChains = min(5,2) = 2; MaxEq = min(5,2) = 2 *)
  check_bool "min of multiplicities" true (Comparator.compare_sides ~params a b)

let test_similar_either_side () =
  let mk removed added = { Delta.removed = side_of_list removed; added = side_of_list added } in
  let a = mk [ ("r->s", 2) ] [] in
  let b = mk [ ("r->s", 2) ] [ ("zz->ww", 9) ] in
  check_bool "removed side matches" true (Comparator.similar ~params a b);
  let c = mk [] [ ("p->q", 3) ] in
  let d = mk [ ("other", 5) ] [ ("p->q", 3) ] in
  check_bool "added side matches" true (Comparator.similar ~params c d);
  let e = mk [ ("x", 2) ] [] in
  let f = mk [] [ ("x", 2) ] in
  check_bool "sides not mixed" false (Comparator.similar ~params e f)

let test_matching_passes () =
  let mk removed = { Delta.removed = side_of_list removed; added = side_of_list [] } in
  let dna1 =
    { Dna.func_name = "f"; deltas = [ ("gvn", mk [ ("a->b", 3) ]); ("dce", mk [ ("c->d", 3) ]) ] }
  in
  let dna2 =
    { Dna.func_name = "g"; deltas = [ ("gvn", mk [ ("a->b", 3) ]); ("dce", mk [ ("zz", 1) ]) ] }
  in
  check_bool "only gvn matches" true
    (Comparator.matching_passes ~params dna1 dna2 = [ "gvn" ])

(* ---- DNA extraction from real traces ---- *)

let test_dna_from_trace () =
  (* two stores to the same index: the second bounds check is genuinely
     redundant and GVN's removal of it (a root of the dependency graph)
     is visible in the delta *)
  let _, trace =
    optimized_mir ~func:0
      "function f(a, v) { a[1] = v; a[1] = v + 1; } for (var k = 0; k < 5; k++) f([1,2,3], k);"
  in
  let dna = Dna.extract trace in
  check_string "func name" "f" dna.Dna.func_name;
  check_int "one delta per pass" (List.length Jitbull_passes.Pipeline.passes)
    (List.length dna.Dna.deltas);
  check_bool "gvn delta non-empty" true (List.mem "gvn" (Dna.nonempty_passes dna));
  (* annotation-only passes are empty *)
  let d = List.assoc "aliasanalysis" dna.Dna.deltas in
  check_bool "aliasanalysis empty" true (Delta.is_empty d)

let test_dna_insensitive_to_renaming () =
  let source =
    "function NAME(a, b) { var local = a + b; return local * local; } for (var k = 0; k < 5; k++) NAME(k, 2);"
  in
  let renamed =
    "function zz9(q, r) { var w = q + r; return w * w; } for (var k = 0; k < 5; k++) zz9(k, 2);"
  in
  let _, t1 = optimized_mir ~func:0 source in
  let _, t2 = optimized_mir ~func:0 renamed in
  let d1 = (Dna.extract t1).Dna.deltas and d2 = (Dna.extract t2).Dna.deltas in
  List.iter2
    (fun (p1, a) (p2, b) ->
      check_string "same pass" p1 p2;
      check_int (p1 ^ " removed equal") (Delta.total a.Delta.removed) (Delta.total b.Delta.removed);
      check_int (p1 ^ " added equal") (Delta.total a.Delta.added) (Delta.total b.Delta.added))
    d1 d2

let test_dna_sexpr_roundtrip () =
  let _, trace =
    optimized_mir ~func:0 "function f(a) { return a + a + a; } for (var k = 0; k < 5; k++) f(k);"
  in
  let dna = Dna.extract trace in
  let dna' = Dna.of_sexpr (Sexpr.of_string (Sexpr.to_string (Dna.to_sexpr dna))) in
  check_string "name" dna.Dna.func_name dna'.Dna.func_name;
  check_int "deltas" (List.length dna.Dna.deltas) (List.length dna'.Dna.deltas)

(* ---- database ---- *)

let test_db_lifecycle () =
  let db = Db.create () in
  check_bool "starts empty" true (Db.is_empty db);
  let d = Jitbull_vdc.Demonstrators.find VC.CVE_2019_17026 in
  let n =
    Db.harvest db ~cve:"CVE-2019-17026" ~vulns:(VC.make [ VC.CVE_2019_17026 ])
      d.Jitbull_vdc.Demonstrators.source
  in
  check_bool "harvested entries" true (n > 0);
  check_bool "cve listed" true (Db.cves db = [ "CVE-2019-17026" ]);
  (* patch applied: remove *)
  Db.remove_cve db "CVE-2019-17026";
  check_bool "empty after patch" true (Db.is_empty db)

let test_db_save_load () =
  let db = Db.create () in
  let d = Jitbull_vdc.Demonstrators.find VC.CVE_2019_9813 in
  ignore
    (Db.harvest db ~cve:"CVE-2019-9813" ~vulns:(VC.make [ VC.CVE_2019_9813 ])
       d.Jitbull_vdc.Demonstrators.source);
  let path = Filename.temp_file "jitbull_db" ".sexp" in
  Db.save db path;
  let db' = Db.load path in
  Sys.remove path;
  check_int "entries preserved" (List.length (Db.entries db)) (List.length (Db.entries db'));
  check_bool "cves preserved" true (Db.cves db = Db.cves db')

(* ---- policy / engine integration ---- *)

let test_empty_db_no_analyzer () =
  let db = Db.create () in
  let config = Jitbull.config ~vulns:VC.none db in
  check_bool "no analyzer when DB empty" true (config.Engine.analyzer = None)

let test_monitor_records () =
  let db = Db.create () in
  let d = Jitbull_vdc.Demonstrators.find VC.CVE_2019_17026 in
  let vulns = VC.make [ VC.CVE_2019_17026 ] in
  ignore (Db.harvest db ~cve:"CVE-2019-17026" ~vulns d.Jitbull_vdc.Demonstrators.source);
  let monitor = Jitbull.new_monitor () in
  let config = Jitbull.config ~monitor ~vulns db in
  (* run an innocent workload: records accumulate, most verdicts Allow *)
  ignore (Engine.run_source config "function h(x) { return x + 1; } var s = 0; for (var i = 0; i < 80; i++) { s = h(i); } print(s);");
  check_bool "records present" true (monitor.Jitbull.records <> []);
  check_bool "innocent function allowed" true
    (List.exists
       (fun (r : Jitbull.record) -> r.Jitbull.verdict = `Allow)
       monitor.Jitbull.records)

let test_forbid_on_mandatory_pass () =
  (* a synthetic analyzer decision path: if the dangerous list contains a
     mandatory pass the verdict is Forbid. We simulate by injecting a
     matching DNA entry for 'renumber'. *)
  let db = Db.create () in
  (* "^" marks a root-boundary sub-chain in the 3-gram representation *)
  let side = Delta.side_of_list [ ("^parameter->constant", 5) ] in
  let delta = { Delta.removed = side; added = Delta.side_of_list [] } in
  let dna = { Dna.func_name = "evil"; deltas = [ ("renumber", delta) ] } in
  Db.add db { Db.cve = "SYNTH"; dna };
  let monitor = Jitbull.new_monitor () in
  let analyze = Jitbull.analyzer ~monitor db in
  (* craft a trace whose renumber delta matches *)
  let snap1 =
    snap [ (1, "constant", []); (2, "parameter", [ 1 ]) ]
  in
  ignore snap1;
  (* direct decision check through the comparator instead: matching_passes
     on a mandatory pass yields Forbid via the analyzer *)
  let trace =
    [
      ("initial", snap [ (1, "constant", []); (2, "parameter", [ 1 ]); (3, "parameter", [ 1 ]);
                         (4, "parameter", [ 1 ]); (5, "parameter", [ 1 ]); (6, "parameter", [ 1 ]) ]);
      ("renumber", snap [ (1, "constant", []) ]);
    ]
  in
  match
    analyze
      ~ctx:{ Engine.cc_bytecode_hash = 0; cc_feedback_hash = 0 }
      ~func_index:0 ~name:"f" ~trace
  with
  | Engine.Forbid_jit -> ()
  | Engine.Allow -> Alcotest.fail "expected Forbid, got Allow"
  | Engine.Disable_passes _ -> Alcotest.fail "expected Forbid, got Disable"

let test_detection_flags_dangerous_pass () =
  let d = Jitbull_vdc.Demonstrators.find VC.CVE_2019_17026 in
  let vulns = VC.make [ VC.CVE_2019_17026 ] in
  let db = Db.create () in
  ignore (Db.harvest db ~cve:"CVE-2019-17026" ~vulns d.Jitbull_vdc.Demonstrators.source);
  let monitor = Jitbull.new_monitor () in
  let config = Jitbull.config ~monitor ~vulns db in
  (* run the second, independent implementation of the same exploit *)
  ignore
    (Jitbull_vdc.Demonstrators.run_exploit config
       Jitbull_vdc.Demonstrators.second_implementation_17026 Jitbull_vdc.Demonstrators.Shellcode);
  let gvn_flagged =
    List.exists
      (fun (r : Jitbull.record) -> List.mem "gvn" r.Jitbull.dangerous_passes)
      monitor.Jitbull.records
  in
  check_bool "GVN flagged on independent implementation" true gvn_flagged

let test_harvest_cold_script_empty () =
  (* a script whose functions never reach Ion contributes no DNA *)
  let db = Db.create () in
  let n =
    Db.harvest db ~cve:"COLD" ~vulns:VC.none "function f(x) { return x; } print(f(1));"
  in
  check_int "nothing harvested" 0 n;
  check_bool "db still empty" true (Db.is_empty db)

let test_engine_forbid_end_to_end () =
  (* a DB entry matching a mandatory pass drives the engine's scenario 3:
     the function is denied JIT but keeps running correctly interpreted *)
  let db = Db.create () in
  (* the renumber pass never changes dependency edges in reality; force a
     synthetic match by teaching the comparator a universal delta for it *)
  let side =
    Delta.side_of_list [ ("^storeelement->elements", 50); ("^boundscheck->unboxint32", 50) ]
  in
  let delta = { Delta.removed = side; added = Delta.side_of_list [] } in
  Db.add db { Db.cve = "SYNTH-MANDATORY"; dna = { Dna.func_name = "evil"; deltas = [ ("renumber", delta) ] } };
  let monitor = Jitbull.new_monitor () in
  let analyzer ~ctx:_ ~func_index:_ ~name:_ ~trace:_ =
    (* bypass comparison: always claim the mandatory pass matched *)
    ignore monitor;
    Engine.Disable_passes [ "renumber" ]
  in
  let config =
    { Engine.default_config with
      Engine.baseline_threshold = 2;
      ion_threshold = 4;
      analyzer = Some analyzer }
  in
  let src =
    "function f(x) { return x * 2; } var s = 0; for (var i = 0; i < 20; i++) { s = f(i); } print(s);"
  in
  let out, t = Engine.run_source config src in
  check_string "still correct without JIT" "38\n" out;
  check_bool "function counted as NoJIT" true ((Engine.stats t).Engine.nr_nojit > 0)

let test_custom_params_flow_through () =
  (* an absurdly strict Ratio disables all matching: the VDC's own variant
     is NOT blocked, demonstrating params plumbing end-to-end *)
  let d = Jitbull_vdc.Demonstrators.find VC.CVE_2019_9813 in
  let vulns = VC.make [ VC.CVE_2019_9813 ] in
  let db = Db.create () in
  ignore (Db.harvest db ~cve:d.Jitbull_vdc.Demonstrators.name ~vulns d.Jitbull_vdc.Demonstrators.source);
  let strict = { Comparator.thr = 100000; ratio = 1.0 } in
  let config = Jitbull.config ~params:strict ~vulns db in
  match
    Jitbull_vdc.Demonstrators.run_exploit config d.Jitbull_vdc.Demonstrators.source
      d.Jitbull_vdc.Demonstrators.expected
  with
  | Jitbull_vdc.Demonstrators.Exploited _ -> ()  (* matching effectively off *)
  | Jitbull_vdc.Demonstrators.Neutralized ->
    Alcotest.fail "impossible threshold should disable matching"

let test_monitor_newest_first () =
  let db = Db.create () in
  let d = Jitbull_vdc.Demonstrators.find VC.CVE_2019_9795 in
  let vulns = VC.make [ VC.CVE_2019_9795 ] in
  ignore (Db.harvest db ~cve:d.Jitbull_vdc.Demonstrators.name ~vulns d.Jitbull_vdc.Demonstrators.source);
  let monitor = Jitbull.new_monitor () in
  let config = Jitbull.config ~monitor ~vulns db in
  ignore
    (Engine.run_source config
       "function a1(x) { return x + 1; } function b2(x) { return x + 2; } var s = 0; for (var i = 0; i < 80; i++) { s = a1(i) + b2(i); } print(s);");
  check_int "two analyzed functions" 2 (List.length monitor.Jitbull.records)

let suite =
  ( "jitbull-core",
    [
      Alcotest.test_case "buildgraph roots" `Quick test_buildgraph_roots;
      Alcotest.test_case "buildgraph excludes orphans" `Quick test_buildgraph_operandless_excluded;
      Alcotest.test_case "chains linear" `Quick test_chains_paper_shapes;
      Alcotest.test_case "chains diamond" `Quick test_chains_diamond;
      Alcotest.test_case "chains cap" `Quick test_chains_cap;
      Alcotest.test_case "ngrams" `Quick test_ngrams;
      Alcotest.test_case "delta: paper worked example" `Quick test_delta_paper_example;
      Alcotest.test_case "delta empty on identical" `Quick test_delta_empty_on_identical;
      Alcotest.test_case "delta multiplicity" `Quick test_delta_multiplicity;
      Alcotest.test_case "delta sexpr roundtrip" `Quick test_delta_sexpr_roundtrip;
      Alcotest.test_case "comparator threshold" `Quick test_comparator_threshold;
      Alcotest.test_case "comparator ratio" `Quick test_comparator_ratio;
      Alcotest.test_case "comparator min multiplicity" `Quick test_comparator_min_multiplicity;
      Alcotest.test_case "similar either side" `Quick test_similar_either_side;
      Alcotest.test_case "matching passes" `Quick test_matching_passes;
      Alcotest.test_case "dna from trace" `Quick test_dna_from_trace;
      Alcotest.test_case "dna rename-insensitive" `Quick test_dna_insensitive_to_renaming;
      Alcotest.test_case "dna sexpr roundtrip" `Quick test_dna_sexpr_roundtrip;
      Alcotest.test_case "db lifecycle" `Quick test_db_lifecycle;
      Alcotest.test_case "db save/load" `Quick test_db_save_load;
      Alcotest.test_case "empty db: no analyzer" `Quick test_empty_db_no_analyzer;
      Alcotest.test_case "monitor records" `Quick test_monitor_records;
      Alcotest.test_case "forbid on mandatory pass" `Quick test_forbid_on_mandatory_pass;
      Alcotest.test_case "detects independent implementation" `Quick test_detection_flags_dangerous_pass;
      Alcotest.test_case "cold script harvests nothing" `Quick test_harvest_cold_script_empty;
      Alcotest.test_case "engine forbid end-to-end" `Quick test_engine_forbid_end_to_end;
      Alcotest.test_case "custom params plumbing" `Quick test_custom_params_flow_through;
      Alcotest.test_case "monitor records per function" `Quick test_monitor_newest_first;
    ] )
