(* Property-based differential testing in the spirit of JIT fuzzing
   (paper §VII): generated programs must behave identically on the
   reference interpreter, the bytecode VM, and the fully optimizing JIT.

   The generator produces type-stable, guaranteed-terminating programs
   (bounded loops only, numeric-only hot arithmetic, in-bounds array
   accesses) so that no bailouts fire — see DESIGN.md on
   replay-from-entry deoptimization. *)

open Helpers
module Engine = Jitbull_jit.Engine

(* The program generator lives in [Jitbull_fuzz.Generator]; this module
   applies it as qcheck properties. [gen_program] is re-exported for the
   other property suites. *)

let gen_program seed = Jitbull_fuzz.Generator.benign ~seed

let qcheck_differential =
  QCheck.Test.make ~count:60 ~name:"interpreter == VM == JIT on generated programs"
    QCheck.(small_int)
    (fun seed ->
      let src = gen_program seed in
      let reference = interp_output src in
      String.equal reference (vm_output src) && String.equal reference (jit_output src))

let qcheck_differential_all_pass_subsets =
  (* disabling any single optional pass must preserve semantics too (the
     JITBULL mitigation path must be safe) *)
  QCheck.Test.make ~count:30 ~name:"single disabled pass preserves semantics"
    QCheck.(pair small_int (int_range 0 13))
    (fun (seed, pass_idx) ->
      let src = gen_program seed in
      let optional =
        List.filter Jitbull_passes.Pipeline.can_disable Jitbull_passes.Pipeline.pass_names
      in
      let pass = List.nth optional (pass_idx mod List.length optional) in
      let reference = interp_output src in
      (* run an engine with the analyzer forcing this pass off for every
         function *)
      let analyzer ~ctx:_ ~func_index:_ ~name:_ ~trace:_ = Engine.Disable_passes [ pass ] in
      let config = { jit_config with Engine.analyzer = Some analyzer } in
      String.equal reference (jit_output ~config src))

let qcheck_differential_vulnerable_engine_on_benign_code =
  (* the injected bugs only matter for code that manipulates array sizes
     around accesses; the generated benign corpus must run identically
     even on a fully vulnerable engine *)
  QCheck.Test.make ~count:30 ~name:"vulnerable engine correct on benign programs"
    QCheck.(small_int)
    (fun seed ->
      let src = gen_program seed in
      let reference = interp_output src in
      let config =
        { jit_config with Engine.vulns = Jitbull_passes.Vuln_config.make Jitbull_passes.Vuln_config.all }
      in
      String.equal reference (jit_output ~config src))

let suite =
  ( "differential",
    [
      qtest qcheck_differential;
      qtest qcheck_differential_all_pass_subsets;
      qtest qcheck_differential_vulnerable_engine_on_benign_code;
    ] )
