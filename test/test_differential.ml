(* Property-based differential testing in the spirit of JIT fuzzing
   (paper §VII): generated programs must behave identically on the
   reference interpreter, the bytecode VM, and the fully optimizing JIT.

   The generator produces type-stable, guaranteed-terminating programs
   (bounded loops only, numeric-only hot arithmetic, in-bounds array
   accesses) so that no bailouts fire — see DESIGN.md on
   replay-from-entry deoptimization. *)

open Helpers
module Engine = Jitbull_jit.Engine
module G = Jitbull_fuzz.Generator

(* The program generator lives in [Jitbull_fuzz.Generator]; this module
   applies it as qcheck properties over the generator's *parameters*
   (seed, function count, warm-up rounds, expression depth) so a failing
   case shrinks structurally instead of reporting an opaque seed.
   [gen_program] is re-exported for the other property suites. *)

let gen_program seed = G.benign ~seed

let gen_params : G.params QCheck.Gen.t =
  QCheck.Gen.map
    (fun (seed, (funcs, (rounds, depth))) ->
      { G.p_seed = seed; p_funcs = funcs; p_rounds = rounds; p_depth = depth })
    QCheck.Gen.(
      pair small_nat (pair (int_range 1 4) (pair (int_range 1 16) (int_range 0 3))))

(* Shrink toward the smallest program first (fewer functions, fewer
   warm-up rounds, shallower expressions), only then toward seed 0. *)
let shrink_params (p : G.params) yield =
  if p.G.p_funcs > 1 then yield { p with G.p_funcs = p.G.p_funcs - 1 };
  if p.G.p_rounds > 1 then yield { p with G.p_rounds = p.G.p_rounds / 2 };
  if p.G.p_rounds > 1 then yield { p with G.p_rounds = p.G.p_rounds - 1 };
  if p.G.p_depth > 0 then yield { p with G.p_depth = p.G.p_depth - 1 };
  if p.G.p_seed > 0 then yield { p with G.p_seed = p.G.p_seed / 2 }

(* The counterexample printout includes the generated source: that is the
   actual reproducer, the parameters only locate it. *)
let print_params p = G.show_params p ^ "\n" ^ G.benign_params p

let arb_params = QCheck.make gen_params ~print:print_params ~shrink:shrink_params

let qcheck_differential =
  QCheck.Test.make ~count:(qcheck_count 60)
    ~name:"interpreter == VM == JIT on generated programs" arb_params
    (fun params ->
      let src = G.benign_params params in
      let reference = interp_output src in
      String.equal reference (vm_output src) && String.equal reference (jit_output src))

let qcheck_differential_all_pass_subsets =
  (* disabling any single optional pass must preserve semantics too (the
     JITBULL mitigation path must be safe) *)
  QCheck.Test.make ~count:(qcheck_count 30) ~name:"single disabled pass preserves semantics"
    QCheck.(pair arb_params (int_range 0 13))
    (fun (params, pass_idx) ->
      let src = G.benign_params params in
      let optional =
        List.filter Jitbull_passes.Pipeline.can_disable Jitbull_passes.Pipeline.pass_names
      in
      let pass = List.nth optional (pass_idx mod List.length optional) in
      let reference = interp_output src in
      (* run an engine with the analyzer forcing this pass off for every
         function *)
      let analyzer ~ctx:_ ~func_index:_ ~name:_ ~trace:_ = Engine.Disable_passes [ pass ] in
      let config = { jit_config with Engine.analyzer = Some analyzer } in
      String.equal reference (jit_output ~config src))

let qcheck_differential_vulnerable_engine_on_benign_code =
  (* the injected bugs only matter for code that manipulates array sizes
     around accesses; the generated benign corpus must run identically
     even on a fully vulnerable engine *)
  QCheck.Test.make ~count:(qcheck_count 30) ~name:"vulnerable engine correct on benign programs"
    arb_params
    (fun params ->
      let src = G.benign_params params in
      let reference = interp_output src in
      let config =
        { jit_config with Engine.vulns = Jitbull_passes.Vuln_config.make Jitbull_passes.Vuln_config.all }
      in
      String.equal reference (jit_output ~config src))

let suite =
  ( "differential",
    [
      qtest qcheck_differential;
      qtest qcheck_differential_all_pass_subsets;
      qtest qcheck_differential_vulnerable_engine_on_benign_code;
    ] )
