(* Explainability: the per-compile IR-diff ring, the decision-explanation
   engine (fresh, cache-hit and evicted-evidence paths), the /explain
   HTTP surface with its query-parameter hardening, and exporter
   robustness against abusive clients. The acceptance bar: every modeled
   CVE's forbidden/disabled compile must yield a report naming the CVE,
   the contributing passes and the introduced sub-chains — identically
   under sync and async compilation. *)

open Helpers
module Obs = Jitbull_obs.Obs
module Audit = Jitbull_obs.Audit
module Irdiff = Jitbull_obs.Irdiff
module Explain = Jitbull_obs.Explain
module Jsonx = Jitbull_obs.Jsonx
module Http = Jitbull_obs.Http_export
module CQ = Jitbull_jit.Compile_queue
module Op = Jitbull_bytecode.Op
module Vm = Jitbull_bytecode.Vm
module Value = Jitbull_runtime.Value
module V = Jitbull_vdc.Demonstrators
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull
module Pipeline = Jitbull_passes.Pipeline
module Intern = Jitbull_util.Intern

let test_jobs =
  match Sys.getenv_opt "JITBULL_TEST_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 2)
  | None -> 2

let has hay needle =
  let nl = String.length needle and l = String.length hay in
  let rec go i = i + nl <= l && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
  go 0

let check_has where hay needle =
  if not (has hay needle) then
    Alcotest.failf "%s: %S not found in:\n%s" where needle hay

(* ---- every modeled CVE produces a causal report ---- *)

let test_every_cve_explained () =
  List.iter
    (fun cve ->
      let d = V.find cve in
      let db = Db.create () in
      check_bool (d.V.name ^ ": harvest found DNA") true
        (Db.harvest db ~cve:d.V.name ~vulns:(VC.make [ cve ]) d.V.source > 0);
      let obs = Obs.create ~explain_capacity:64 () in
      let config = Jitbull.config ~obs ~vulns:(VC.make [ cve ]) db in
      (match V.run_exploit config d.V.source d.V.expected with
      | V.Neutralized -> ()
      | V.Exploited _ -> Alcotest.fail (d.V.name ^ ": exploit not neutralized"));
      let au = Obs.audit obs in
      let r =
        match Audit.by_cve au d.V.name with
        | r :: _ -> r
        | [] -> Alcotest.fail (d.V.name ^ ": no audit record names the CVE")
      in
      let e = Explain.resolve ?irdiff:(Obs.irdiff obs) ~history:(Audit.records au) r in
      let text = Explain.to_text ~can_disable:Pipeline.can_disable e in
      let where = d.V.name ^ " report" in
      check_has where text d.V.name;
      check_has where text "EqChains";
      check_has where text "verdict:";
      (* names every contributing pass and at least one matching sub-chain *)
      check_bool (d.V.name ^ ": match evidence present") true (r.Audit.matches <> []);
      List.iter
        (fun (cm : Audit.cve_match) ->
          List.iter
            (fun (pm : Audit.pass_match) ->
              check_has where text pm.Audit.pm_pass;
              check_bool (d.V.name ^ ": sub-chain evidence recorded") true
                (pm.Audit.pm_chains <> []);
              match pm.Audit.pm_chains with
              | (k, _) :: _ -> check_has where text k
              | [] -> ())
            cm.Audit.cm_passes)
        r.Audit.matches;
      (* the IR diff of the flagged compile was captured and is joined in *)
      (match e.Explain.ex_diff with
      | Some diff ->
        check_string (d.V.name ^ ": diff is for the flagged function")
          r.Audit.func_name diff.Irdiff.cd_func;
        check_has where text "per-pass IR diff ("
      | None -> Alcotest.fail (d.V.name ^ ": IR diff not captured")))
    VC.all

(* ---- sync and async runs explain identically ---- *)

(* Same self-match rig as test_audit: harvest [tri]'s own DNA, then any
   engine compiling [tri] against that DB flags it deterministically. *)
let self_matching_db () =
  let db = Db.create () in
  let harvest_src =
    "function tri(x) { var t = 0; for (var i = 0; i < x; i++) { t = t + i; } return t; } \
     var s = 0; for (var j = 0; j < 60; j++) { s = s + tri(10); } print(s);"
  in
  check_bool "self-harvest found DNA" true
    (Db.harvest db ~cve:"CVE-SELF" ~vulns:VC.none harvest_src > 0);
  db

let drive_src =
  "function add(a, b) { return a + b; } \
   function tri(x) { var t = 0; for (var i = 0; i < x; i++) { t = t + i; } return t; }"

let func_idx eng name =
  let funcs = (Engine.vm eng).Vm.program.Op.funcs in
  let rec go i =
    if i >= Array.length funcs then Alcotest.fail ("no function " ^ name)
    else if String.equal funcs.(i).Op.name name then i
    else go (i + 1)
  in
  go 0

let drive eng =
  let num n = Value.Number (float_of_int n) in
  let add = func_idx eng "add" and tri = func_idx eng "tri" in
  for i = 0 to 9 do
    ignore (Vm.call_function (Engine.vm eng) add [ num i; num (i + 1) ]);
    ignore (Vm.call_function (Engine.vm eng) tri [ num (i mod 5) ]);
    Engine.drain eng
  done

let engine_of ?compile_pool db obs =
  let cfg = Jitbull.config ?compile_pool ~obs ~vulns:VC.none db in
  let cfg = { cfg with Engine.baseline_threshold = 2; ion_threshold = 4 } in
  Engine.create cfg (Compiler.compile (Parser.parse drive_src))

(* Everything in a report except the volatile bits (seq, timestamps,
   domain, capture wall time): verdict, full comparator evidence, and
   the diff with chain ids materialized to strings. *)
let canonical_report obs func =
  let au = Obs.audit obs in
  match Audit.by_function au func with
  | [] -> Alcotest.fail ("no decisions for " ^ func)
  | r :: _ ->
    let e = Explain.resolve ?irdiff:(Obs.irdiff obs) ~history:(Audit.records au) r in
    let diff =
      match e.Explain.ex_diff with
      | None -> Alcotest.fail (func ^ ": IR diff not captured")
      | Some d ->
        List.map
          (fun (p : Irdiff.pass_diff) ->
            ( p.Irdiff.pd_pass,
              (p.Irdiff.pd_instrs_before, p.Irdiff.pd_instrs_after),
              (p.Irdiff.pd_blocks_before, p.Irdiff.pd_blocks_after),
              (p.Irdiff.pd_opcodes_added, p.Irdiff.pd_opcodes_removed),
              List.map (fun (k, c) -> (Irdiff.chain_key k, c)) p.Irdiff.pd_chains_added,
              List.map (fun (k, c) -> (Irdiff.chain_key k, c)) p.Irdiff.pd_chains_removed
            ))
          d.Irdiff.cd_passes
    in
    ( r.Audit.func_name,
      Audit.verdict_label r.Audit.verdict,
      r.Audit.matches,
      (r.Audit.thr, r.Audit.ratio),
      diff )

let test_sync_async_reports_agree () =
  let db = self_matching_db () in
  let obs_s = Obs.create ~explain_capacity:64 () in
  let obs_a = Obs.create ~explain_capacity:64 () in
  let pool = CQ.create ~jobs:test_jobs () in
  Fun.protect
    ~finally:(fun () -> CQ.shutdown pool)
    (fun () ->
      drive (engine_of db obs_s);
      drive (engine_of ~compile_pool:pool db obs_a));
  let s = canonical_report obs_s "tri" and a = canonical_report obs_a "tri" in
  check_bool "sync run flagged tri" true
    (match s with _, v, _, _, _ -> v <> "allow");
  check_bool "sync and async explanations carry identical evidence" true (s = a)

(* ---- /explain over HTTP, and the hardened query parameters ---- *)

let content_type headers =
  Option.value ~default:"" (List.assoc_opt "content-type" headers)

let test_http_explain () =
  let db = self_matching_db () in
  let obs = Obs.create ~explain_capacity:64 () in
  drive (engine_of db obs);
  let au = Obs.audit obs in
  let flagged =
    match Audit.by_cve au "CVE-SELF" with
    | r :: _ -> r
    | [] -> Alcotest.fail "tri not flagged"
  in
  let pass =
    match flagged.Audit.matches with
    | { Audit.cm_passes = pm :: _; _ } :: _ -> pm.Audit.pm_pass
    | _ -> Alcotest.fail "no pass evidence"
  in
  let srv = Http.start ~can_disable:Pipeline.can_disable ~obs ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Http.stop srv)
    (fun () ->
      let port = Http.port srv in
      let url = Printf.sprintf "/explain?id=%d" flagged.Audit.seq in
      (* HTML report *)
      let code, headers, body = Http.fetch_full ~port url in
      check_int "/explain?id is 200" 200 code;
      check_has "html content-type" (content_type headers) "text/html";
      check_has "html report" body "CVE-SELF";
      check_has "html report" body pass;
      check_has "html report" body "per-pass IR diff";
      (* plain-text variant carries the same names *)
      let code, headers, text = Http.fetch_full ~port (url ^ "&format=text") in
      check_int "format=text is 200" 200 code;
      check_has "text content-type" (content_type headers) "text/plain";
      check_has "text report" text "CVE-SELF";
      check_has "text report" text pass;
      (* index links to the decision *)
      let code, body = Http.fetch ~port "/explain" in
      check_int "/explain index is 200" 200 code;
      check_has "index" body (Printf.sprintf "/explain?id=%d" flagged.Audit.seq);
      (* malformed and unknown ids *)
      let code, _, _ = Http.fetch_full ~port "/explain?id=abc" in
      check_int "non-numeric id is 400" 400 code;
      let code, headers, body = Http.fetch_full ~port "/explain?id=999999" in
      check_int "unknown id is 404" 404 code;
      check_has "404 content-type" (content_type headers) "application/json";
      check_has "404 body" body "evicted";
      (* /audit?n hardening: negative, non-numeric and huge are 400 *)
      List.iter
        (fun q ->
          let code, _, _ = Http.fetch_full ~port ("/audit?n=" ^ q) in
          check_int ("/audit?n=" ^ q ^ " is 400") 400 code)
        [ "-1"; "abc"; "999999" ];
      let code, headers, _ = Http.fetch_full ~port "/audit?n=2" in
      check_int "/audit?n=2 is 200" 200 code;
      check_has "audit content-type" (content_type headers) "application/json";
      let code, _, _ = Http.fetch_full ~port "/explain?n=abc" in
      check_int "index with bad n is 400" 400 code)

(* ---- exporter robustness: concurrent, oversized and rude clients ---- *)

let test_http_robustness () =
  let obs = Obs.create () in
  let srv = Http.start ~obs ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Http.stop srv)
    (fun () ->
      let port = Http.port srv in
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      (* concurrent clients on separate domains all get served *)
      let worker =
        Domain.spawn (fun () ->
            let ok = ref true in
            for _ = 1 to 10 do
              let code, _ = Http.fetch ~port "/metrics" in
              if code <> 200 then ok := false
            done;
            !ok)
      in
      let ok = ref true in
      for _ = 1 to 10 do
        let code, _ = Http.fetch ~port "/healthz" in
        if code <> 200 then ok := false
      done;
      check_bool "interleaved client served" true !ok;
      check_bool "concurrent domain client served" true (Domain.join worker);
      (* a client that connects and hangs up immediately *)
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect s addr;
      Unix.close s;
      (* a request line far beyond the 16 KiB read bound, never terminated *)
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect s addr;
      let junk = Bytes.make 20_000 'A' in
      (try ignore (Unix.write s junk 0 (Bytes.length junk))
       with Unix.Unix_error _ -> ());
      (try Unix.close s with Unix.Unix_error _ -> ());
      (* the server survives all of it *)
      let code, _ = Http.fetch ~port "/healthz" in
      check_int "server alive after abuse" 200 code)

(* ---- the diff ring: bounded, seq-keyed, cumulative aggregates ---- *)

let mk_diff func =
  {
    Irdiff.cd_func = func;
    cd_total_passes = 3;
    cd_passes =
      [
        {
          Irdiff.pd_pass = "gvn";
          pd_instrs_before = 10;
          pd_instrs_after = 8;
          pd_blocks_before = 3;
          pd_blocks_after = 3;
          pd_opcodes_added = [];
          pd_opcodes_removed = [ ("boundscheck", 2) ];
          pd_chains_added = [ (Intern.intern "guard->loadelement", 1) ];
          pd_chains_removed = [ (Intern.intern "boundscheck->loadelement", 2) ];
        };
      ];
    cd_capture_seconds = 1e-6;
  }

let test_irdiff_ring () =
  let t = Irdiff.create ~capacity:2 () in
  check_int "capacity" 2 (Irdiff.capacity t);
  for seq = 1 to 5 do
    Irdiff.attach t ~seq (mk_diff (Printf.sprintf "f%d" seq))
  done;
  check_int "total counts evicted diffs" 5 (Irdiff.total t);
  Alcotest.(check (list int)) "newest two retained" [ 4; 5 ] (Irdiff.seqs t);
  check_bool "evicted seq finds nothing" true (Irdiff.find t 1 = None);
  (match Irdiff.find t 5 with
  | Some d -> check_string "find returns the right diff" "f5" d.Irdiff.cd_func
  | None -> Alcotest.fail "newest diff missing");
  Irdiff.record_contribution t ~pass:"gvn" ~cve:"CVE-X" 3;
  Irdiff.record_contribution t ~pass:"gvn" ~cve:"CVE-X" 2;
  Irdiff.record_contribution t ~pass:"gvn" ~cve:"CVE-X" 0;
  let prom = Irdiff.render_prometheus t in
  check_has "prometheus" prom "jitbull_explain_diffs_total 5";
  check_has "prometheus" prom
    "jitbull_explain_chains_introduced_total{pass=\"gvn\",cve=\"CVE-X\"} 5"

(* ---- eviction over HTTP: audit-evicted id is 404, diff-evicted is a
   200 with the capture marked unavailable ---- *)

let append_simple au i ~source =
  Audit.append au
    ~func_name:(Printf.sprintf "f%d" i)
    ~func_index:i ~bytecode_hash:i ~feedback_hash:(i * 7) ~verdict:Audit.Allow
    ~matches:[] ~thr:2 ~ratio:0.5 ~prefilter_candidates:0 ~prefilter_hits:0
    ~db_generation:1 ~db_size:4 ~source ~duration:1e-6 ()

let test_http_evicted_id () =
  let obs = Obs.create ~audit_capacity:2 ~explain_capacity:2 () in
  let au = Obs.audit obs in
  let first = append_simple au 0 ~source:Audit.Fresh in
  let rest = List.init 4 (fun i -> append_simple au (i + 1) ~source:Audit.Fresh) in
  let newest = List.nth rest 3 in
  let srv = Http.start ~obs ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Http.stop srv)
    (fun () ->
      let port = Http.port srv in
      let code, _, body =
        Http.fetch_full ~port (Printf.sprintf "/explain?id=%d" first.Audit.seq)
      in
      check_int "audit-evicted id is 404" 404 code;
      check_has "404 body" body "evicted";
      (* the newest decision is retained in the audit ring but never had a
         diff attached (nothing compiled): 200 with the capture marked
         unavailable, not a crash *)
      let code, _, body =
        Http.fetch_full ~port
          (Printf.sprintf "/explain?id=%d&format=text" newest.Audit.seq)
      in
      check_int "retained id is 200" 200 code;
      check_has "diffless report" body "not captured")

(* ---- cache-hit resolution: evidence replay without the engine ---- *)

let test_cache_hit_resolution () =
  let au = Audit.create () in
  let matches =
    [
      {
        Audit.cm_cve = "CVE-2019-9810";
        cm_passes =
          [
            {
              Audit.pm_pass = "licm";
              pm_side = "added";
              pm_eq_chains = 4;
              pm_max_eq_chains = 6;
              pm_chains = [ ("^guard->loadelement", 2) ];
            };
          ];
      };
    ]
  in
  let fresh =
    Audit.append au ~func_name:"hot" ~func_index:1 ~bytecode_hash:42
      ~feedback_hash:7
      ~verdict:(Audit.Disable [ "licm" ])
      ~matches ~thr:2 ~ratio:0.5 ~prefilter_candidates:4 ~prefilter_hits:1
      ~db_generation:1 ~db_size:4 ~source:Audit.Fresh ~duration:2e-6 ()
  in
  (* same function, different bytecode: must not be picked as evidence *)
  ignore
    (Audit.append au ~func_name:"hot" ~func_index:1 ~bytecode_hash:43
       ~feedback_hash:7 ~verdict:Audit.Allow ~matches:[] ~thr:2 ~ratio:0.5
       ~prefilter_candidates:0 ~prefilter_hits:0 ~db_generation:1 ~db_size:4
       ~source:Audit.Fresh ~duration:1e-6 ());
  let hit =
    Audit.append au ~func_name:"hot" ~func_index:1 ~bytecode_hash:42
      ~feedback_hash:7
      ~verdict:(Audit.Disable [ "licm" ])
      ~matches:[] ~thr:2 ~ratio:0.5 ~prefilter_candidates:0 ~prefilter_hits:0
      ~db_generation:1 ~db_size:4 ~source:Audit.Cache_hit ~duration:0.0 ()
  in
  let e = Explain.resolve ~history:(Audit.records au) hit in
  (match e.Explain.ex_evidence with
  | Some ev -> check_int "evidence is the matching fresh record" fresh.Audit.seq ev.Audit.seq
  | None -> Alcotest.fail "cache hit did not resolve to its fresh record");
  let text = Explain.to_text e in
  check_has "cache-hit report" text "cache hit";
  check_has "cache-hit report" text "CVE-2019-9810";
  check_has "cache-hit report" text "licm";
  check_has "cache-hit report" text "^guard->loadelement";
  (* a hit whose fresh record is gone still renders, marked as such *)
  let orphan = append_simple au 9 ~source:Audit.Cache_hit in
  let e = Explain.resolve ~history:(Audit.records au) orphan in
  check_bool "orphan hit has no evidence" true (e.Explain.ex_evidence = None);
  check_has "orphan report" (Explain.to_text e) "evicted"

let suite =
  ( "explain",
    [
      Alcotest.test_case "every modeled CVE yields a causal report" `Quick
        test_every_cve_explained;
      Alcotest.test_case "sync and async explanations agree" `Quick
        test_sync_async_reports_agree;
      Alcotest.test_case "/explain endpoints and query hardening" `Quick
        test_http_explain;
      Alcotest.test_case "exporter robustness under abusive clients" `Quick
        test_http_robustness;
      Alcotest.test_case "IR-diff ring: bounds, keys, aggregates" `Quick
        test_irdiff_ring;
      Alcotest.test_case "evicted ids over HTTP" `Quick test_http_evicted_id;
      Alcotest.test_case "offline cache-hit evidence replay" `Quick
        test_cache_hit_resolution;
    ] )
