(* Additional edge-case unit tests across modules. *)

open Helpers
module Token = Jitbull_frontend.Token
module Lexer = Jitbull_frontend.Lexer
module Value = Jitbull_runtime.Value
module Heap = Jitbull_runtime.Heap
module Sexpr = Jitbull_util.Sexpr
module Prng = Jitbull_util.Prng
module Op = Jitbull_bytecode.Op
module Compiler = Jitbull_bytecode.Compiler
module Parser = Jitbull_frontend.Parser
module Mir = Jitbull_mir.Mir
module Domtree = Jitbull_mir.Domtree
module Depgraph = Jitbull_core.Depgraph
module Chains = Jitbull_core.Chains
module Catalog = Jitbull_vdc.Catalog
module Variants = Jitbull_vdc.Variants
module Lir = Jitbull_lir.Lir
module Peephole = Jitbull_lir.Peephole
module Engine = Jitbull_jit.Engine

let test_lexer_positions () =
  let tokens = Lexer.tokenize "a\n  bb" in
  match tokens with
  | [ { Token.pos = p1; _ }; { Token.pos = p2; _ }; _ ] ->
    check_int "first line" 1 p1.Token.line;
    check_int "first col" 1 p1.Token.column;
    check_int "second line" 2 p2.Token.line;
    check_int "second col" 3 p2.Token.column
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_error_position () =
  match Lexer.tokenize "ok\n   @" with
  | exception Lexer.Lex_error (_, pos) ->
    check_int "error line" 2 pos.Token.line;
    check_int "error column" 4 pos.Token.column
  | _ -> Alcotest.fail "expected lex error"

let test_sexpr_file_roundtrip () =
  let path = Filename.temp_file "sexpr" ".tmp" in
  let s = Sexpr.list [ Sexpr.atom "x"; Sexpr.int 3; Sexpr.list [ Sexpr.atom "nested y" ] ] in
  Sexpr.save path s;
  let s' = Sexpr.load path in
  Sys.remove path;
  check_string "roundtrip" (Sexpr.to_string s) (Sexpr.to_string s')

let test_prng_choose () =
  let p = Prng.create 1 in
  for _ = 1 to 50 do
    check_bool "choose member" true (List.mem (Prng.choose p [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  match Prng.choose p [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty choose should raise"

let test_heap_introspection () =
  let h = Heap.create ~size_limit:512 () in
  let a = Heap.alloc_array h ~length:3 in
  check_int "size" 512 (Heap.size h);
  check_bool "cells used counts header" true (Heap.cells_used h = 5);
  check_bool "base addr" true (Heap.base_addr h a = 0);
  (* zero-length arrays still get capacity 1 *)
  let b = Heap.alloc_array h ~length:0 in
  check_int "zero-length capacity" 1 (Heap.capacity h b);
  check_int "zero-length length" 0 (Heap.length h b)

let test_heap_freelist_reuse () =
  let h = Heap.create ~size_limit:512 () in
  let a = Heap.alloc_array h ~length:20 in
  Heap.set_length h a 2;
  let used_before = Heap.cells_used h in
  (* the next allocation fits in the reclaimed tail: no bump growth *)
  let _ = Heap.alloc_array h ~length:5 in
  check_int "no bump growth" used_before (Heap.cells_used h)

let test_op_to_string_total () =
  (* every opcode renders without raising *)
  let ops =
    [ Op.Push_const (Value.Number 1.0); Op.Load_local 0; Op.Store_local 1;
      Op.Load_global "g"; Op.Store_global "g"; Op.Declare_global "g"; Op.Pop; Op.Dup;
      Op.Binop Jitbull_frontend.Ast.Add; Op.Unop Jitbull_frontend.Ast.Not; Op.Jump 3;
      Op.Jump_if_false 4; Op.Jump_if_true 5; Op.New_array 2; Op.New_object [ "a" ];
      Op.Get_index; Op.Set_index; Op.Get_member "m"; Op.Set_member "m"; Op.Call 1;
      Op.Call_method ("push", 1); Op.Return; Op.Return_undefined ]
  in
  List.iter (fun op -> check_bool "nonempty" true (String.length (Op.to_string op) > 0)) ops

let test_domtree_loop_body () =
  let bc = Compiler.compile (Parser.parse "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; } f(3);") in
  let row =
    Array.init (Array.length bc.Op.funcs.(0).Op.code) (fun _ ->
        Jitbull_bytecode.Feedback.fresh_site ())
  in
  let g = Jitbull_mir.Builder.build bc.Op.funcs.(0) ~feedback_row:row in
  let dom = Domtree.compute g in
  let header =
    List.find
      (fun (b : Mir.block) -> List.exists (fun p -> Domtree.dominates dom b p) b.Mir.preds)
      g.Mir.blocks
  in
  let body = Domtree.loop_body dom g header in
  check_bool "header in body" true (Hashtbl.mem body header.Mir.bid);
  check_bool "body smaller than graph" true (Hashtbl.length body < List.length g.Mir.blocks)

let snap_of entries =
  {
    Jitbull_mir.Snapshot.func_name = "t";
    n_blocks = 1;
    entries =
      List.map
        (fun (num, opcode, operands) -> { Jitbull_mir.Snapshot.num; opcode; operands })
        entries;
  }

let test_chains_max_length () =
  (* a deep linear chain is truncated at max_length *)
  let entries = List.init 20 (fun i -> (i, Printf.sprintf "op%d" i, if i = 0 then [] else [ i - 1 ])) in
  let g = Depgraph.build (snap_of entries) in
  let chains = Chains.extract ~max_length:5 g in
  List.iter
    (fun c -> check_bool "truncated" true (List.length c <= 7))
    chains

let test_catalog_lookup () =
  check_bool "find known" true (Catalog.find "CVE-2019-17026" <> None);
  check_bool "find unknown" true (Catalog.find "CVE-0000-0000" = None);
  check_int "survey size matches paper's table" 24 (List.length Catalog.all)

let test_variants_mix_seed_varies () =
  let src = "var a = 1; var b = 2; var c = 3; var d = 4; print(a + b + c + d);" in
  (* different seeds may reorder differently but always run identically *)
  check_string "seed 1 runs" (interp_output src) (interp_output (Variants.apply ~seed:1 Variants.Mix src));
  check_string "seed 2 runs" (interp_output src) (interp_output (Variants.apply ~seed:2 Variants.Mix src))

let test_peephole_branch_remap () =
  (* hand-build LIR: goto over a noop move; after peephole the branch must
     still reach the return *)
  let mk kind = Lir.make_inst kind in
  let i0 = mk Lir.Kconst in
  i0.Lir.dst <- 0;
  i0.Lir.imm <- 0;
  let i1 = mk Lir.Kgoto in
  i1.Lir.imm <- 3;
  let i2 = mk Lir.Kmove in
  i2.Lir.dst <- 1;
  i2.Lir.a <- 1;
  (* noop: removed *)
  let i3 = mk Lir.Kreturn in
  i3.Lir.a <- 0;
  let f =
    {
      Lir.name = "t";
      arity = 0;
      code = [| i0; i1; i2; i3 |];
      consts = [| Value.Number 9.0 |];
      names = [||];
      call_args = [||];
      fields = [||];
      n_regs = 2;
      spill_count = 0;
    }
  in
  let removed = Peephole.run f in
  check_bool "removed something" true (removed >= 1);
  (* executing still returns 9 *)
  let realm = Jitbull_runtime.Realm.create ~size_limit:256 () in
  let cb =
    {
      Jitbull_lir.Executor.call_function = (fun _ _ -> Value.Undefined);
      lookup_global = (fun _ -> Value.Undefined);
      store_global = (fun _ _ -> ());
      declare_global = (fun _ -> ());
    }
  in
  check_bool "still returns 9" true
    (Jitbull_lir.Executor.run f realm cb [] = Value.Number 9.0)

let test_engine_double_run_safe () =
  (* running two engines over the same program source is independent *)
  let src = "function f(x) { return x + 1; } var s = 0; for (var i = 0; i < 40; i++) { s = f(i); } print(s);" in
  let a, _ = Engine.run_source Engine.default_config src in
  let b, _ = Engine.run_source Engine.default_config src in
  check_string "independent runs" a b

let test_value_display () =
  check_string "NaN" "NaN" (Value.to_display (Value.Number Float.nan));
  check_string "Infinity" "Infinity" (Value.to_display (Value.Number Float.infinity));
  check_string "negative zero is 0" "0" (Value.to_display (Value.Number (-0.0)));
  check_string "float" "2.5" (Value.to_display (Value.Number 2.5));
  let obj = Hashtbl.create 2 in
  Hashtbl.replace obj "b" (Value.Number 2.0);
  Hashtbl.replace obj "a" (Value.Number 1.0);
  check_string "object sorted fields" "{a: 1, b: 2}" (Value.to_display (Value.Object obj))

let suite =
  ( "extra-unit",
    [
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "lexer error position" `Quick test_lexer_error_position;
      Alcotest.test_case "sexpr file roundtrip" `Quick test_sexpr_file_roundtrip;
      Alcotest.test_case "prng choose" `Quick test_prng_choose;
      Alcotest.test_case "heap introspection" `Quick test_heap_introspection;
      Alcotest.test_case "heap freelist reuse" `Quick test_heap_freelist_reuse;
      Alcotest.test_case "op to_string total" `Quick test_op_to_string_total;
      Alcotest.test_case "domtree loop body" `Quick test_domtree_loop_body;
      Alcotest.test_case "chains max length" `Quick test_chains_max_length;
      Alcotest.test_case "catalog lookup" `Quick test_catalog_lookup;
      Alcotest.test_case "variants mix seeds" `Quick test_variants_mix_seed_varies;
      Alcotest.test_case "peephole branch remap" `Quick test_peephole_branch_remap;
      Alcotest.test_case "engine double run" `Quick test_engine_double_run_safe;
      Alcotest.test_case "value display" `Quick test_value_display;
    ] )
