(* The fleet observability plane: traceparent codec round-trip and
   hostile-input rejection (property tests), wire-level 400s on
   malformed headers, cross-process trace reconstruction (client +
   server trace files merged, parent links walked from the server's
   verdict span back to the engine's tier-up anchor), /push + /fleet
   aggregation with per-client labels and exact rollups, the sampling
   profiler's attribution mechanics, audit-sink rotation, and the
   build-info /metrics series. *)

open Helpers
module Obs = Jitbull_obs.Obs
module Tracer = Jitbull_obs.Tracer
module Audit = Jitbull_obs.Audit
module Fleet = Jitbull_obs.Fleet
module Propagate = Jitbull_obs.Propagate
module Profile = Jitbull_obs.Profile
module Jsonx = Jitbull_obs.Jsonx
module Http = Jitbull_obs.Http_export
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull
module Service = Jitbull_service.Service
module Client = Jitbull_service.Client
module CQ = Jitbull_jit.Compile_queue
module Op = Jitbull_bytecode.Op
module Value = Jitbull_runtime.Value

let test_jobs =
  match Sys.getenv_opt "JITBULL_TEST_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 2)
  | None -> 2

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  nn = 0 || go 0

let self_matching_db () =
  let db = Db.create () in
  let harvest_src =
    "function tri(x) { var t = 0; for (var i = 0; i < x; i++) { t = t + i; } return t; } \
     var s = 0; for (var j = 0; j < 60; j++) { s = s + tri(10); } print(s);"
  in
  check_bool "self-harvest found DNA" true
    (Db.harvest db ~cve:"CVE-SELF" ~vulns:VC.none harvest_src > 0);
  db

let with_service ?obs db f =
  let svc = Service.create ~workers:1 ?obs ~db ~port:0 () in
  Fun.protect ~finally:(fun () -> Service.stop svc) (fun () -> f svc)

let with_conn svc f =
  let conn = Http.Conn.connect ~port:(Service.port svc) () in
  Fun.protect ~finally:(fun () -> Http.Conn.close conn) (fun () -> f conn)

(* ---- propagation codec: property round-trip + hostile rejection ---- *)

let qcheck_propagate_roundtrip =
  QCheck.Test.make
    ~count:(qcheck_count 200)
    ~name:"propagate: decode is a strict inverse of encode"
    QCheck.(triple pos_int pos_int pos_int)
    (fun (a, b, p) ->
      let trace_id = Printf.sprintf "%016x%016x" (max a 1) b in
      let ctx = { Propagate.trace_id; parent_id = max p 1 } in
      let header = Propagate.encode ctx in
      String.length header = 55
      && (match Propagate.decode header with
         | Ok c -> c = ctx
         | Error _ -> false))

let test_propagate_rejects_hostile () =
  let good =
    Propagate.encode
      { Propagate.trace_id = Propagate.fresh_trace_id (); parent_id = 42 }
  in
  (match Propagate.decode good with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("valid header rejected: " ^ m));
  let bad =
    [
      "";
      "00";
      "garbage";
      (* wrong version *)
      "01-0123456789abcdef0123456789abcdef-0123456789abcdef-01";
      (* uppercase hex *)
      "00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01";
      (* all-zero trace id *)
      "00-00000000000000000000000000000000-0123456789abcdef-01";
      (* zero parent id *)
      "00-0123456789abcdef0123456789abcdef-0000000000000000-01";
      (* bad delimiters *)
      "00_0123456789abcdef0123456789abcdef_0123456789abcdef_01";
      (* trailing junk *)
      good ^ "x";
      (* truncated *)
      String.sub good 0 (String.length good - 1);
    ]
  in
  List.iter
    (fun h ->
      match Propagate.decode h with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "hostile header accepted: %S" h)
    bad

(* Trace ids and span ids stay unique when minted from concurrent
   domains (the tracer id counter is process-global and pid-seeded). *)
let test_id_uniqueness_across_domains () =
  let obs = Some (Obs.create ()) in
  let alloc n =
    List.init n (fun _ ->
        match Obs.alloc_id obs with
        | Some i -> i
        | None -> Alcotest.fail "alloc_id on a live obs")
  in
  let d1 = Domain.spawn (fun () -> alloc 500) in
  let d2 = Domain.spawn (fun () -> List.init 200 (fun _ -> Propagate.fresh_trace_id ())) in
  let local_ids = alloc 500 in
  let remote_ids = Domain.join d1 in
  let remote_tids = Domain.join d2 in
  let local_tids = List.init 200 (fun _ -> Propagate.fresh_trace_id ()) in
  let ids = local_ids @ remote_ids in
  let tbl = Hashtbl.create 2048 in
  List.iter (fun i -> Hashtbl.replace tbl i ()) ids;
  check_int "span ids unique across domains" (List.length ids) (Hashtbl.length tbl);
  let tids = local_tids @ remote_tids in
  let ttbl = Hashtbl.create 1024 in
  List.iter (fun s -> Hashtbl.replace ttbl s ()) tids;
  check_int "trace ids unique across domains" (List.length tids) (Hashtbl.length ttbl);
  check_bool "trace ids well-formed" true (List.for_all Propagate.valid_trace_id tids)

(* ---- wire: malformed traceparent is a 400 on any route ---- *)

let test_traceparent_wire_validation () =
  with_service (self_matching_db ()) (fun svc ->
      with_conn svc (fun conn ->
          let status, headers, _ =
            Http.Conn.request conn ~headers:[ (Propagate.header_name, "zz") ] "/gen"
          in
          check_int "malformed traceparent is a 400" 400 status;
          check_string "400 body is JSON" "application/json"
            (List.assoc "content-type" headers);
          let good =
            Propagate.encode
              { Propagate.trace_id = Propagate.fresh_trace_id (); parent_id = 7 }
          in
          let status, _, _ =
            Http.Conn.request conn ~headers:[ (Propagate.header_name, good) ] "/gen"
          in
          check_int "well-formed traceparent passes" 200 status;
          let status, headers, body = Http.Conn.request conn "/no-such-route" in
          check_int "unknown route is a 404" 404 status;
          check_string "404 body is JSON" "application/json"
            (List.assoc "content-type" headers);
          check_bool "404 body carries an error field" true (contains body "\"error\"")))

(* ---- cross-process chain: client + server trace files merge ---- *)

let drive_src =
  "function add(a, b) { return a + b; } \
   function tri(x) { var t = 0; for (var i = 0; i < x; i++) { t = t + i; } return t; }"

let func_idx eng name =
  let funcs = (Engine.vm eng).Vm.program.Op.funcs in
  let rec go i =
    if i >= Array.length funcs then Alcotest.fail ("no function " ^ name)
    else if String.equal funcs.(i).Op.name name then i
    else go (i + 1)
  in
  go 0

let read_trace path =
  let ic = open_in path in
  let events = ref [] in
  (try
     while true do
       events := Tracer.event_of_json (Jsonx.parse (input_line ic)) :: !events
     done
   with End_of_file -> close_in ic);
  List.rev !events

let test_cross_process_trace_chain () =
  let db = self_matching_db () in
  let server_obs = Obs.create () in
  let server_trace = Filename.temp_file "jitbull_srv" ".jsonl" in
  Obs.set_trace_file server_obs server_trace;
  let client_obs = Obs.create () in
  let client_trace = Filename.temp_file "jitbull_cli" ".jsonl" in
  Obs.set_trace_file client_obs client_trace;
  let svc = Service.create ~workers:1 ~obs:server_obs ~db ~port:0 () in
  let pool = CQ.create ~jobs:test_jobs () in
  let client =
    Client.connect ~subscribe:false ~obs:client_obs ~client_id:"chain-test"
      ~port:(Service.port svc) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      CQ.shutdown pool;
      Service.stop svc)
    (fun () ->
      let cfg = Client.engine_config client ~vulns:VC.none () in
      let cfg =
        {
          cfg with
          Engine.baseline_threshold = 2;
          ion_threshold = 4;
          obs = Some client_obs;
          compile_pool = Some pool;
        }
      in
      let eng =
        Engine.create cfg
          (Jitbull_bytecode.Compiler.compile (Jitbull_frontend.Parser.parse drive_src))
      in
      let tri = func_idx eng "tri" in
      let served () =
        List.exists
          (fun (e : Tracer.event) -> String.equal e.Tracer.name "service.verdict")
          (Tracer.events (Obs.tracer server_obs))
      in
      let deadline = Unix.gettimeofday () +. 20.0 in
      while (not (served ())) && Unix.gettimeofday () < deadline do
        ignore (Vm.call_function (Engine.vm eng) tri [ Value.Number 8.0 ]);
        Engine.drain eng;
        Unix.sleepf 0.002
      done;
      check_bool "server recorded a verdict span" true (served ()));
  Obs.close (Some client_obs);
  Obs.close (Some server_obs);
  let events = read_trace server_trace @ read_trace client_trace in
  Sys.remove server_trace;
  Sys.remove client_trace;
  let by_id = Hashtbl.create 512 in
  List.iter
    (fun (e : Tracer.event) -> if e.Tracer.id <> 0 then Hashtbl.replace by_id e.Tracer.id e)
    events;
  let sv =
    match
      List.find_opt
        (fun (e : Tracer.event) -> String.equal e.Tracer.name "service.verdict")
        events
    with
    | Some e -> e
    | None -> Alcotest.fail "merged trace lost the server verdict span"
  in
  check_bool "server span labeled with the client id" true
    (match List.assoc_opt "client" sv.Tracer.fields with
    | Some (Jsonx.String c) -> String.equal c "chain-test"
    | _ -> false);
  check_bool "server span carries the client trace id" true
    (match List.assoc_opt "trace_id" sv.Tracer.fields with
    | Some (Jsonx.String _) -> true
    | _ -> false);
  (* walk parent links from the server span back into the client's
     trace, all the way to the tier-up anchor *)
  let rec walk id steps chain =
    if steps > 64 then
      Alcotest.failf "no tier_up_request within 64 hops: %s"
        (String.concat " <- " (List.rev chain))
    else
      match Hashtbl.find_opt by_id id with
      | None ->
        Alcotest.failf "dangling parent id %d (chain so far: %s)" id
          (String.concat " <- " (List.rev chain))
      | Some e ->
        let chain = e.Tracer.name :: chain in
        if String.equal e.Tracer.name "tier_up_request" then List.rev chain
        else (
          match e.Tracer.parent with
          | Some p -> walk p (steps + 1) chain
          | None ->
            Alcotest.failf "chain ended at %s before tier_up_request" e.Tracer.name)
  in
  (match sv.Tracer.parent with
  | None -> Alcotest.fail "server span has no remote parent"
  | Some p ->
    let chain = walk p 0 [ sv.Tracer.name ] in
    check_bool "chain crosses the client's remote_verdict span" true
      (List.mem "remote_verdict" chain));
  (* and the server-side audit trail carries the same provenance *)
  check_bool "server audit stamped with client id + remote parent" true
    (List.exists
       (fun (r : Audit.record) ->
         r.Audit.client_id = Some "chain-test" && r.Audit.remote_parent <> None)
       (Audit.records (Obs.audit server_obs)))

(* ---- /push + /fleet: per-client labels, exact rollups ---- *)

let append_audit au ~tag ~n ~verdict =
  for i = 1 to n do
    ignore
      (Audit.append au
         ~func_name:(Printf.sprintf "%s%d" tag i)
         ~func_index:i ~bytecode_hash:i ~feedback_hash:(i * 3) ~verdict
         ~matches:[] ~thr:3 ~ratio:0.5 ~prefilter_candidates:1 ~prefilter_hits:0
         ~db_generation:0 ~db_size:1 ~source:Audit.Fresh ~duration:1e-4 ()
        : Audit.record)
  done

let push_ok what client =
  match Client.push client with
  | Ok n -> n
  | Error m -> Alcotest.failf "%s push failed: %s" what m

let test_fleet_aggregation_e2e () =
  let db = self_matching_db () in
  let obs_a = Obs.create () and obs_b = Obs.create () in
  with_service db (fun svc ->
      let connect id obs =
        Client.connect ~subscribe:false ~obs ~client_id:id
          ~port:(Service.port svc) ()
      in
      let a = connect "alpha" obs_a and b = connect "beta" obs_b in
      Fun.protect
        ~finally:(fun () ->
          Client.close a;
          Client.close b)
        (fun () ->
          append_audit (Obs.audit obs_a) ~tag:"fa" ~n:3 ~verdict:Audit.Allow;
          append_audit (Obs.audit obs_b) ~tag:"fb" ~n:2
            ~verdict:(Audit.Disable [ "gvn" ]);
          check_int "alpha delta accepted" 3 (push_ok "alpha" a);
          check_int "beta delta accepted" 2 (push_ok "beta" b);
          (* cumulative snapshots: a re-push replaces, never double-counts *)
          check_int "re-push carries no new delta" 0 (push_ok "alpha again" a);
          with_conn svc (fun conn ->
              let status, headers, body =
                Http.Conn.request conn "/fleet?format=json"
              in
              check_int "/fleet json is 200" 200 status;
              check_string "json content type" "application/json"
                (List.assoc "content-type" headers);
              let j = Jsonx.parse body in
              let clients = Jsonx.member "clients" j in
              let rollup = Jsonx.member "rollup" j in
              (match clients with
              | Jsonx.Assoc l ->
                let ids = List.map fst l in
                check_bool "both client series present" true
                  (List.mem "alpha" ids && List.mem "beta" ids)
              | _ -> Alcotest.fail "clients is an object");
              check_int "rollup records = sum of local counters" 5
                (Jsonx.to_int (Jsonx.member "records" rollup));
              check_int "rollup allow" 3 (Jsonx.to_int (Jsonx.member "allow" rollup));
              check_int "rollup disable" 2
                (Jsonx.to_int (Jsonx.member "disable" rollup));
              let alpha = Jsonx.member "alpha" clients in
              check_int "alpha per-client totals" 3
                (Jsonx.to_int (Jsonx.member "records" (Jsonx.member "totals" alpha)));
              check_int "alpha delta records counted" 3
                (Jsonx.to_int (Jsonx.member "delta_records" alpha));
              let status, _, prom = Http.Conn.request conn "/fleet" in
              check_int "/fleet prometheus is 200" 200 status;
              check_bool "alpha series labeled" true (contains prom "client=\"alpha\"");
              check_bool "beta series labeled" true (contains prom "client=\"beta\"");
              let status, headers, html =
                Http.Conn.request conn "/fleet?format=html"
              in
              check_int "/fleet html is 200" 200 status;
              check_bool "html content type" true
                (contains (List.assoc "content-type" headers) "text/html");
              check_bool "dashboard lists alpha" true (contains html "alpha"))))

let test_push_rejects_malformed () =
  with_service (self_matching_db ()) (fun svc ->
      with_conn svc (fun conn ->
          let status, headers, _ =
            Http.Conn.request conn ~meth:"POST" ~body:"not json" "/push"
          in
          check_int "garbage push body is a 400" 400 status;
          check_string "400 content type" "application/json"
            (List.assoc "content-type" headers);
          let status, _, _ =
            Http.Conn.request conn ~meth:"POST" ~body:"{\"ts\": 1}" "/push"
          in
          check_int "snapshot without a client id is a 400" 400 status;
          let status, _, _ = Http.Conn.request conn "/push" in
          check_bool "GET /push is rejected" true (status >= 400)))

(* ---- sampling profiler mechanics ---- *)

let spin_tag = Profile.tag "test;spin"

let spin_for seconds =
  let t0 = Unix.gettimeofday () in
  let x = ref 0 in
  while Unix.gettimeofday () -. t0 < seconds do
    for _ = 1 to 20_000 do
      x := (!x * 1664525) + 1013904223
    done
  done;
  !x

let test_profiler_attribution () =
  if not (Profile.available ()) then ()
  else begin
    Profile.stop ();
    Profile.reset ();
    check_int "fresh profiler holds no samples" 0 (Profile.total_samples ());
    ignore (Profile.with_tag spin_tag (fun () -> spin_for 0.05) : int);
    check_int "disabled profiling records nothing" 0 (Profile.total_samples ());
    check_bool "sampler armed" true (Profile.start ());
    ignore (Profile.with_tag spin_tag (fun () -> spin_for 0.4) : int);
    Profile.stop ();
    let total = Profile.total_samples () in
    check_bool "sampler ticked while armed" true (total > 0);
    let spin =
      Option.value ~default:0 (List.assoc_opt "test;spin" (Profile.report ()))
    in
    check_bool "spin frame dominates the profile" true (spin * 2 > total);
    check_bool "most ticks attributed" true (Profile.attributed_fraction () >= 0.5);
    check_bool "collapsed-stack output carries the frame" true
      (contains (Profile.collapsed ()) "jsrun;test;spin ");
    let after_stop = Profile.total_samples () in
    ignore (spin_for 0.05 : int);
    check_int "stopped sampler stays silent" after_stop (Profile.total_samples ());
    Profile.reset ();
    check_int "reset zeroes the counters" 0 (Profile.total_samples ())
  end

(* ---- audit sink rotation ---- *)

let test_audit_sink_rotation () =
  let au = Audit.create () in
  let path = Filename.temp_file "jitbull_rot" ".jsonl" in
  Audit.set_file_sink au ~max_bytes:700 path;
  append_audit au ~tag:"rot" ~n:24 ~verdict:Audit.Allow;
  Audit.close au;
  check_bool "sink rotated at least once" true (Audit.sink_rotations au >= 1);
  check_bool "rotated-out file exists" true (Sys.file_exists (path ^ ".1"));
  (* the live file picks up cleanly after a rotation: every line is a
     well-formed record *)
  let ic = open_in path in
  (try
     while true do
       ignore (Audit.record_of_json (Jsonx.parse (input_line ic)) : Audit.record)
     done
   with End_of_file -> close_in ic);
  check_bool "rotation counter exported" true
    (contains (Audit.render_prometheus au) "jitbull_audit_sink_rotations_total");
  Sys.remove path;
  (try Sys.remove (path ^ ".1") with Sys_error _ -> ())

(* ---- /metrics build info ---- *)

let test_metrics_build_info () =
  let obs = Obs.create () in
  with_service ~obs (self_matching_db ()) (fun svc ->
      with_conn svc (fun conn ->
          let status, _, body = Http.Conn.request conn "/metrics" in
          check_int "/metrics is 200" 200 status;
          check_bool "build info series present" true
            (contains body "jitbull_build_info{version=\"");
          check_bool "ocaml version labeled" true
            (contains body ("ocaml=\"" ^ Sys.ocaml_version ^ "\""));
          check_bool "process start time exported" true
            (contains body "process_start_time_seconds ");
          let status, _, _ = Http.Conn.request conn "/profile" in
          check_int "/profile is served" 200 status))

let suite =
  ( "fleet",
    [
      qtest qcheck_propagate_roundtrip;
      Alcotest.test_case "propagate rejects hostile headers" `Quick
        test_propagate_rejects_hostile;
      Alcotest.test_case "ids unique across domains" `Quick
        test_id_uniqueness_across_domains;
      Alcotest.test_case "traceparent wire validation" `Quick
        test_traceparent_wire_validation;
      Alcotest.test_case "cross-process trace chain" `Slow
        test_cross_process_trace_chain;
      Alcotest.test_case "fleet aggregation end to end" `Slow
        test_fleet_aggregation_e2e;
      Alcotest.test_case "push rejects malformed bodies" `Quick
        test_push_rejects_malformed;
      Alcotest.test_case "profiler attribution" `Slow test_profiler_attribution;
      Alcotest.test_case "audit sink rotation" `Quick test_audit_sink_rotation;
      Alcotest.test_case "metrics build info" `Quick test_metrics_build_info;
    ] )
