(* Tests for the lexer, parser and printer. *)

open Helpers
module Lexer = Jitbull_frontend.Lexer
module Token = Jitbull_frontend.Token
module Parser = Jitbull_frontend.Parser
module Printer = Jitbull_frontend.Printer
module Ast = Jitbull_frontend.Ast

let tokens src = List.map (fun (s : Token.spanned) -> s.Token.token) (Lexer.tokenize src)

let test_lex_numbers () =
  check_bool "int" true (tokens "42" = [ Token.NUMBER 42.0; Token.EOF ]);
  check_bool "float" true (tokens "3.5" = [ Token.NUMBER 3.5; Token.EOF ]);
  check_bool "hex" true (tokens "0x10" = [ Token.NUMBER 16.0; Token.EOF ]);
  check_bool "exponent" true (tokens "1e3" = [ Token.NUMBER 1000.0; Token.EOF ]);
  check_bool "leading dot" true (tokens ".5" = [ Token.NUMBER 0.5; Token.EOF ])

let test_lex_strings () =
  check_bool "double quoted" true (tokens {|"ab"|} = [ Token.STRING "ab"; Token.EOF ]);
  check_bool "single quoted" true (tokens "'cd'" = [ Token.STRING "cd"; Token.EOF ]);
  check_bool "escapes" true (tokens {|"a\nb\"c"|} = [ Token.STRING "a\nb\"c"; Token.EOF ])

let test_lex_operators () =
  check_bool ">>> vs >>" true (tokens "a >>> b >> c" =
    [ Token.IDENT "a"; Token.USHR; Token.IDENT "b"; Token.SHR; Token.IDENT "c"; Token.EOF ]);
  check_bool "=== vs ==" true (tokens "a === b == c" =
    [ Token.IDENT "a"; Token.EQEQEQ; Token.IDENT "b"; Token.EQEQ; Token.IDENT "c"; Token.EOF ]);
  check_bool "++ vs + +" true (tokens "a++ + b" =
    [ Token.IDENT "a"; Token.PLUSPLUS; Token.PLUS; Token.IDENT "b"; Token.EOF ])

let test_lex_comments () =
  check_bool "line comment" true (tokens "1 // two\n3" = [ Token.NUMBER 1.0; Token.NUMBER 3.0; Token.EOF ]);
  check_bool "block comment" true (tokens "1 /* x\ny */ 2" = [ Token.NUMBER 1.0; Token.NUMBER 2.0; Token.EOF ])

let test_lex_keywords () =
  check_bool "let is var" true (tokens "let x" = [ Token.VAR; Token.IDENT "x"; Token.EOF ]);
  check_bool "const is var" true (tokens "const x" = [ Token.VAR; Token.IDENT "x"; Token.EOF ])

let test_lex_errors () =
  let fails s =
    match Lexer.tokenize s with
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.fail ("should not lex: " ^ s)
  in
  fails "@";
  fails "\"unterminated";
  fails "/* unterminated"

let test_parse_precedence () =
  let e = Parser.parse_expression "1 + 2 * 3" in
  check_bool "mul binds tighter" true
    (e = Ast.Binary (Ast.Add, Ast.Number 1.0, Ast.Binary (Ast.Mul, Ast.Number 2.0, Ast.Number 3.0)));
  let e2 = Parser.parse_expression "1 < 2 && 3 < 4 || x" in
  (match e2 with
  | Ast.Logical (Ast.Or, Ast.Logical (Ast.And, _, _), Ast.Ident "x") -> ()
  | _ -> Alcotest.fail "|| / && precedence");
  let e3 = Parser.parse_expression "a = b = 1" in
  match e3 with
  | Ast.Assign (Ast.Lvar "a", Ast.Assign (Ast.Lvar "b", Ast.Number 1.0)) -> ()
  | _ -> Alcotest.fail "assignment right-assoc"

let test_parse_postfix_chain () =
  match Parser.parse_expression "a.b[1](2).c" with
  | Ast.Member (Ast.Call (Ast.Index (Ast.Member (Ast.Ident "a", "b"), Ast.Number 1.0), [ Ast.Number 2.0 ]), "c")
    -> ()
  | _ -> Alcotest.fail "postfix chain shape"

let test_parse_incr_desugar () =
  (* x++ keeps old-value semantics via (x = x + 1) - 1 *)
  check_string "postfix value" "3\n4\n" (interp_output "var x = 3; print(x++); print(x);");
  check_string "prefix value" "4\n4\n" (interp_output "var x = 3; print(++x); print(x);");
  check_string "compound" "10\n" (interp_output "var x = 7; x += 3; print(x);")

let test_parse_statements () =
  let p = Parser.parse "function f(a) { return a; } var x = 1; if (x) { x = 2; } else x = 3;" in
  check_int "one function" 1 (List.length p.Ast.functions);
  check_int "two main stmts" 2 (List.length p.Ast.main)

let test_parse_for_variants () =
  check_string "classic for" "10\n" (interp_output "var t = 0; for (var i = 0; i < 5; i++) t += i; print(t);");
  check_string "for no init" "3\n" (interp_output "var i = 0; for (; i < 3;) i += 1; print(i);");
  check_string "multi declarator" "7\n"
    (interp_output "for (var i = 0, j = 7; i < 1; i++) { print(j); }")

let test_parse_errors () =
  let fails s =
    match Parser.parse s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "function f() { function g() {} }";
  fails "1 +";
  fails "if (x)";
  fails "var = 3;";
  fails "1 = 2;";
  fails "break;;;)"

let test_printer_basic () =
  let p = Parser.parse "function f(a,b){return a*b+1;} print(f(2,3));" in
  let printed = Printer.program_to_string p in
  check_bool "mentions function" true
    (String.length printed > 0 && String.sub printed 0 8 = "function");
  (* reparse gives the same AST *)
  check_bool "roundtrip equal" true (Ast.equal_program p (Parser.parse printed))

let test_printer_compact () =
  let p = Parser.parse "var x = 1 + 2; if (x > 2) { print(x); }" in
  let compact = Printer.program_to_string ~compact:true p in
  check_bool "no newlines" true (not (String.contains compact '\n'));
  check_bool "compact reparses" true (Ast.equal_program p (Parser.parse compact))

let test_printer_precedence_parens () =
  let cases =
    [ "(1 + 2) * 3"; "1 - (2 - 3)"; "-(1 + 2)"; "(a = 1) + 2"; "!(a && b)"; "1 < (2 < 3 ? 4 : 5)" ]
  in
  List.iter
    (fun src ->
      let e = Parser.parse_expression src in
      let printed = Printer.expr_to_string e in
      check_bool (src ^ " roundtrip") true (Ast.equal_expr e (Parser.parse_expression printed)))
    cases

(* Random AST generator for the printer/parser roundtrip property. *)
let gen_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let ident = oneofl [ "a"; "b"; "c"; "x"; "y" ] in
  let rec expr n =
    if n <= 0 then
      oneof
        [
          map (fun f -> Ast.Number (float_of_int f)) (int_range 0 100);
          map (fun s -> Ast.String s) (oneofl [ "s"; "hi"; "" ]);
          map (fun b -> Ast.Bool b) bool;
          return Ast.Null;
          return Ast.Undefined;
          map (fun v -> Ast.Ident v) ident;
        ]
    else
      frequency
        [
          (3, expr 0);
          ( 2,
            map3
              (fun op a b -> Ast.Binary (op, a, b))
              (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Strict_eq; Ast.Bit_and; Ast.Shl ])
              (expr (n / 2)) (expr (n / 2)) );
          (1, map2 (fun a b -> Ast.Logical (Ast.And, a, b)) (expr (n / 2)) (expr (n / 2)));
          (1, map3 (fun c t e -> Ast.Conditional (c, t, e)) (expr (n / 3)) (expr (n / 3)) (expr (n / 3)));
          (1, map2 (fun v e -> Ast.Assign (Ast.Lvar v, e)) ident (expr (n - 1)));
          (1, map (fun es -> Ast.Array_lit es) (list_size (int_range 0 3) (expr (n / 2))));
          (1, map2 (fun o i -> Ast.Index (o, i)) (expr (n / 2)) (expr (n / 2)));
          (1, map (fun o -> Ast.Member (o, "p")) (expr (n / 2)));
          (1, map2 (fun f args -> Ast.Call (f, args)) (map (fun v -> Ast.Ident v) ident)
                (list_size (int_range 0 2) (expr (n / 2))));
        ]
  in
  let rec stmt n =
    if n <= 0 then
      oneof
        [
          map (fun e -> Ast.Expr_stmt e) (expr 2);
          map2 (fun v e -> Ast.Var (v, Some e)) ident (expr 2);
          return Ast.Break;
          return Ast.Continue;
          map (fun e -> Ast.Return (Some e)) (expr 2);
        ]
    else
      frequency
        [
          (3, stmt 0);
          ( 1,
            map3
              (fun c t e -> Ast.If (c, t, e))
              (expr 2)
              (list_size (int_range 0 2) (stmt (n / 2)))
              (list_size (int_range 0 2) (stmt (n / 2))) );
          (1, map2 (fun c b -> Ast.While (c, b)) (expr 2) (list_size (int_range 0 2) (stmt (n / 2))));
        ]
  in
  let func =
    map2
      (fun name body -> { Ast.name; params = [ "p"; "q" ]; body })
      (oneofl [ "f"; "g" ])
      (list_size (int_range 0 3) (stmt 2))
  in
  map2
    (fun functions main -> { Ast.functions; main })
    (list_size (int_range 0 2) func)
    (list_size (int_range 0 4) (stmt 2))

let qcheck_printer_roundtrip =
  QCheck.Test.make ~count:(qcheck_count 300) ~name:"printer/parser roundtrip (pretty)"
    (QCheck.make gen_program)
    (fun p -> Ast.equal_program p (Parser.parse (Printer.program_to_string p)))

let qcheck_printer_roundtrip_compact =
  QCheck.Test.make ~count:(qcheck_count 300) ~name:"printer/parser roundtrip (compact)"
    (QCheck.make gen_program)
    (fun p -> Ast.equal_program p (Parser.parse (Printer.program_to_string ~compact:true p)))

let test_declared_vars () =
  let p =
    Parser.parse
      "function f() { var a = 1; if (a) { var b = 2; } for (var c = 0; c < 1; c++) { var d; } var a; }"
  in
  let f = List.hd p.Ast.functions in
  check_bool "hoisting collects nested, deduped" true
    (Ast.declared_vars f.Ast.body = [ "a"; "b"; "c"; "d" ])

let suite =
  ( "frontend",
    [
      Alcotest.test_case "lex numbers" `Quick test_lex_numbers;
      Alcotest.test_case "lex strings" `Quick test_lex_strings;
      Alcotest.test_case "lex operators" `Quick test_lex_operators;
      Alcotest.test_case "lex comments" `Quick test_lex_comments;
      Alcotest.test_case "lex keywords" `Quick test_lex_keywords;
      Alcotest.test_case "lex errors" `Quick test_lex_errors;
      Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
      Alcotest.test_case "parse postfix chain" `Quick test_parse_postfix_chain;
      Alcotest.test_case "incr/compound desugaring" `Quick test_parse_incr_desugar;
      Alcotest.test_case "parse statements" `Quick test_parse_statements;
      Alcotest.test_case "for variants" `Quick test_parse_for_variants;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "printer basic" `Quick test_printer_basic;
      Alcotest.test_case "printer compact" `Quick test_printer_compact;
      Alcotest.test_case "printer parens" `Quick test_printer_precedence_parens;
      qtest qcheck_printer_roundtrip;
      qtest qcheck_printer_roundtrip_compact;
      Alcotest.test_case "declared_vars hoisting" `Quick test_declared_vars;
    ] )
