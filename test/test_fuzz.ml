(* Tests for the fuzzing subsystem and the paper's §IV-A auto-harvest
   pipeline. *)

open Helpers
module F = Jitbull_fuzz
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let fast cfg = { cfg with Engine.baseline_threshold = 2; Engine.ion_threshold = 4 }

let seeds n = List.init n (fun i -> i)

let test_generator_determinism () =
  check_string "benign deterministic" (F.Generator.benign ~seed:5) (F.Generator.benign ~seed:5);
  check_string "aggressive deterministic" (F.Generator.aggressive ~seed:5)
    (F.Generator.aggressive ~seed:5);
  check_bool "seeds differ" true
    (not (String.equal (F.Generator.benign ~seed:1) (F.Generator.benign ~seed:2)))

let test_generated_programs_parse () =
  List.iter
    (fun seed ->
      ignore (Jitbull_frontend.Parser.parse (F.Generator.benign ~seed));
      ignore (Jitbull_frontend.Parser.parse (F.Generator.aggressive ~seed)))
    (seeds 30)

let test_benign_campaign_clean () =
  (* benign programs agree on every tier even on a fully vulnerable engine *)
  let config = fast { Engine.default_config with Engine.vulns = VC.make VC.all } in
  let r = F.Harness.campaign ~profile:`Benign ~seeds:(seeds 15) ~config () in
  check_int "all agree" r.F.Harness.total r.F.Harness.agreements;
  check_int "no signals" 0 (List.length r.F.Harness.signals)

let test_aggressive_on_patched_engine_clean () =
  let config = fast Engine.default_config in
  let r = F.Harness.campaign ~profile:`Aggressive ~seeds:(seeds 15) ~config () in
  check_int "patched engine: no signals" 0 (List.length r.F.Harness.signals)

let test_aggressive_finds_exploits () =
  let vulns = VC.make [ VC.CVE_2019_17026; VC.CVE_2019_9813 ] in
  let config = fast { Engine.default_config with Engine.vulns } in
  let r = F.Harness.campaign ~profile:`Aggressive ~seeds:(seeds 15) ~config () in
  check_bool "signals found" true (List.length r.F.Harness.signals > 0);
  (* every signal is a memory-safety observable, not a mismatch *)
  List.iter
    (fun (f : F.Harness.finding) ->
      match f.F.Harness.verdict with
      | F.Oracle.Crash _ | F.Oracle.Shellcode _ | F.Oracle.Pwned _ | F.Oracle.Mismatch _ -> ()
      | v -> Alcotest.fail ("unexpected verdict " ^ F.Oracle.verdict_summary v))
    r.F.Harness.signals

let test_auto_harvest_neutralizes () =
  let vulns = VC.make [ VC.CVE_2019_17026; VC.CVE_2019_9813 ] in
  let vulnerable = fast { Engine.default_config with Engine.vulns } in
  let r = F.Harness.campaign ~profile:`Aggressive ~seeds:(seeds 12) ~config:vulnerable () in
  check_bool "found something to harvest" true (r.F.Harness.signals <> []);
  let db = Db.create () in
  let n = F.Harness.auto_harvest ~vulns ~db r.F.Harness.signals in
  check_bool "DNA entries installed" true (n > 0);
  let protected_cfg = fast (Jitbull.config ~vulns db) in
  List.iter
    (fun (f : F.Harness.finding) ->
      check_bool
        (Printf.sprintf "seed %d neutralized" f.F.Harness.seed)
        false
        (F.Oracle.is_exploit_signal (F.Oracle.run ~config:protected_cfg f.F.Harness.source)))
    r.F.Harness.signals

let test_generalizes_to_fresh_inputs () =
  (* DNA harvested from one campaign blocks exploit inputs from different
     seeds — the similarity matching at work, not input memorization *)
  let vulns = VC.make [ VC.CVE_2019_17026; VC.CVE_2019_9813 ] in
  let vulnerable = fast { Engine.default_config with Engine.vulns } in
  let train = F.Harness.campaign ~profile:`Aggressive ~seeds:(seeds 12) ~config:vulnerable () in
  let db = Db.create () in
  ignore (F.Harness.auto_harvest ~vulns ~db train.F.Harness.signals);
  let protected_cfg = fast (Jitbull.config ~vulns db) in
  let fresh = List.init 10 (fun i -> 500 + i) in
  let unprotected = F.Harness.campaign ~profile:`Aggressive ~seeds:fresh ~config:vulnerable () in
  let guarded = F.Harness.campaign ~profile:`Aggressive ~seeds:fresh ~config:protected_cfg () in
  check_bool "fresh inputs exploit unprotected" true (unprotected.F.Harness.signals <> []);
  check_int "fresh inputs blocked under fuzz-fed JITBULL" 0
    (List.length guarded.F.Harness.signals)

(* {2 Coverage-guided loop} *)

let all_vulnerable = fast { Engine.default_config with Engine.vulns = VC.make VC.all }

let test_instrumented_run_artifacts () =
  let src =
    "function hot(a) { var s = 0; for (var i = 0; i < a.length; i++) { s += a[i]; } \
     return s; } var arr = [1,2,3,4]; var t = 0; for (var k = 0; k < 40; k++) { t = \
     hot(arr); } print(t);"
  in
  let r = F.Oracle.run_instrumented src in
  (match r.F.Oracle.i_verdict with
  | F.Oracle.Agree _ -> ()
  | v -> Alcotest.fail (F.Oracle.verdict_summary v));
  check_bool "bytecode captured" true (r.F.Oracle.i_bytecode <> None);
  check_bool "a traced Ion compile produced DNA" true (r.F.Oracle.i_dnas <> []);
  check_bool "ion event flagged" true (List.mem "ion" r.F.Oracle.i_events);
  check_bool "policy:allow flagged (no analyzer)" true
    (List.mem "policy:allow" r.F.Oracle.i_events)

let test_coverage_dedup_and_gain () =
  let src = F.Generator.benign ~seed:3 in
  let r = F.Oracle.run_instrumented src in
  let feats = F.Coverage.features_of_run r in
  check_bool "run yields features" true (feats <> []);
  check_string "features deterministic" ""
    (if F.Coverage.features_of_run (F.Oracle.run_instrumented src) = feats then ""
     else "differ");
  let map = F.Coverage.create () in
  let gain1 = F.Coverage.add_features map feats in
  check_bool "first add gains" true (gain1 > 0);
  check_int "replay gains nothing" 0 (F.Coverage.add_features map feats);
  check_int "count matches gain" gain1 (F.Coverage.count map)

let test_mutants_parse_and_are_deterministic () =
  let parses src =
    match Jitbull_frontend.Parser.parse src with _ -> true | exception _ -> false
  in
  List.iter
    (fun seed ->
      let rng = Jitbull_util.Prng.create (1000 + seed) in
      let src = F.Generator.aggressive ~seed in
      let m = F.Mutator.mutate rng src in
      check_bool "mutant parses" true (parses m);
      let rng' = Jitbull_util.Prng.create (1000 + seed) in
      check_string "mutation deterministic" m (F.Mutator.mutate rng' src))
    (seeds 20)

let test_corpus_persistence_roundtrip () =
  let dir = Filename.temp_file "jitbull_corpus" "" in
  Sys.remove dir;
  let c = F.Corpus.create ~dir () in
  check_int "starts empty" 0 (F.Corpus.length c);
  ignore (F.Corpus.add c ~gain:5 "print(1);");
  ignore (F.Corpus.add c ~gain:1 "print(2);");
  let c' = F.Corpus.create ~dir () in
  check_int "reloaded both entries" 2 (F.Corpus.length c');
  let sources = List.map (fun (e : F.Corpus.entry) -> e.F.Corpus.source) (F.Corpus.entries c') in
  check_bool "sources survive the round-trip" true
    (List.mem "print(1);" sources && List.mem "print(2);" sources);
  let rng = Jitbull_util.Prng.create 7 in
  match F.Corpus.pick rng c with
  | None -> Alcotest.fail "pick returned nothing on a nonempty corpus"
  | Some picked ->
    check_bool "pick returns a member" true
      (List.mem picked.F.Corpus.source [ "print(1);"; "print(2);" ])

let test_metamorphic_clean_on_benign () =
  (* alt_configs exercise the remaining invariants: indexed == naive
     comparator verdicts and DB-growth monotonicity (an engine whose DB
     gained unrelated entries still agrees on benign code) *)
  let db = Db.create () in
  let vulns = VC.make VC.all in
  ignore
    (F.Harness.auto_harvest ~vulns ~db
       (List.filter_map
          (fun src ->
            let v = F.Oracle.run ~config:all_vulnerable src in
            if F.Oracle.is_exploit_signal v then
              Some { F.Harness.seed = 0; source = src; verdict = v }
            else None)
          (F.Harness.vdc_seed_sources ())));
  check_bool "grown DB nonempty" true (Db.size db > 0);
  let alt_configs =
    [
      ("indexed==naive", fast (Jitbull.config ~comparator:`Naive ~vulns db));
      ("db-growth", fast (Jitbull.config ~vulns db));
    ]
  in
  List.iter
    (fun seed ->
      let src = F.Generator.benign ~seed in
      match F.Oracle.check_metamorphic ~config:all_vulnerable ~jobs:2 ~alt_configs src with
      | [] -> ()
      | v :: _ ->
        Alcotest.fail
          (Printf.sprintf "seed %d violates %s: %s" seed v.F.Oracle.mv_invariant
             v.F.Oracle.mv_detail))
    (seeds 5)

let test_metamorphic_detects_vulnerable_engine () =
  (* on a fully vulnerable engine the VDC demonstrators must trip at least
     the interp==jit invariant *)
  let any =
    List.exists
      (fun src ->
        F.Oracle.check_metamorphic ~config:all_vulnerable ~subsets:[] ~jobs:0 src <> [])
      (F.Harness.vdc_seed_sources ())
  in
  check_bool "violations observed" true any

let test_guided_finds_every_cve_faster_than_blind () =
  (* acceptance: from an empty corpus, the coverage-guided aggressive
     campaign attributes a signal to every modeled CVE within a bounded
     exec budget; the blind sweep at that same exec count covers strictly
     fewer CVEs *)
  let budget = 64 in
  let g = F.Harness.guided_campaign ~config:all_vulnerable ~track_cves:true ~max_execs:budget () in
  check_int "guided attributes every modeled CVE" (List.length VC.all)
    (List.length g.F.Harness.g_cve_execs);
  let worst =
    List.fold_left (fun acc (_, e) -> max acc e) 0 g.F.Harness.g_cve_execs
  in
  check_bool "within the exec budget" true (worst <= budget);
  let blind = F.Harness.blind_sweep ~config:all_vulnerable ~track_cves:true ~max_execs:worst () in
  check_bool
    (Printf.sprintf "blind sweep covers fewer CVEs in %d execs (got %d)" worst
       (List.length blind.F.Harness.g_cve_execs))
    true
    (List.length blind.F.Harness.g_cve_execs < List.length VC.all)

let test_guided_coverage_dominates_blind () =
  let execs = 40 in
  let g = F.Harness.guided_campaign ~config:all_vulnerable ~max_execs:execs () in
  let b = F.Harness.blind_sweep ~config:all_vulnerable ~max_execs:execs () in
  check_bool
    (Printf.sprintf "guided coverage %d > blind coverage %d" g.F.Harness.g_coverage
       b.F.Harness.g_coverage)
    true
    (g.F.Harness.g_coverage > b.F.Harness.g_coverage);
  check_bool "curve is monotone" true
    (let rec mono = function
       | a :: (b :: _ as rest) ->
         a.F.Harness.cp_execs < b.F.Harness.cp_execs
         && a.F.Harness.cp_coverage < b.F.Harness.cp_coverage
         && mono rest
       | _ -> true
     in
     mono g.F.Harness.g_curve)

let test_shrinker_halves_a_real_signal () =
  (* acceptance: the delta-debugging shrinker reduces at least one real
     signal to ≤ 50 % of its original size while preserving the verdict
     kind *)
  let g = F.Harness.guided_campaign ~config:all_vulnerable ~max_execs:40 () in
  check_bool "campaign produced signals" true (g.F.Harness.g_signals <> []);
  let by_size =
    List.sort
      (fun (a : F.Harness.finding) b ->
        compare (String.length b.F.Harness.source) (String.length a.F.Harness.source))
      g.F.Harness.g_signals
  in
  let halved =
    List.exists
      (fun (f : F.Harness.finding) ->
        let small =
          F.Shrink.shrink_signal ~config:all_vulnerable ~verdict:f.F.Harness.verdict
            f.F.Harness.source
        in
        2 * String.length small <= String.length f.F.Harness.source
        && F.Oracle.same_kind
             (F.Oracle.run ~config:all_vulnerable small)
             f.F.Harness.verdict)
      (List.filteri (fun i _ -> i < 5) by_size)
  in
  check_bool "some signal shrank to ≤ 50% with the same verdict" true halved

let test_shrinker_deterministic_and_counts_errors () =
  let g = F.Harness.guided_campaign ~config:all_vulnerable ~max_execs:25 () in
  check_bool "campaign produced signals" true (g.F.Harness.g_signals <> []);
  let f = List.hd g.F.Harness.g_signals in
  let shrink_once () =
    let errors = ref 0 in
    let small =
      F.Shrink.shrink_signal ~config:all_vulnerable ~max_checks:60 ~seed:42 ~errors
        ~verdict:f.F.Harness.verdict f.F.Harness.source
    in
    (small, !errors)
  in
  let s1, e1 = shrink_once () in
  let s2, e2 = shrink_once () in
  check_string "same seed, same minimized source" s1 s2;
  check_int "same seed, same error count" e1 e2;
  check_int "oracle predicate never crashed" 0 e1;
  (* a predicate that raises is counted, not swallowed *)
  let errors = ref 0 in
  let calls = ref 0 in
  let keep s =
    incr calls;
    if !calls = 1 then true (* the initial reprint must be kept *)
    else if String.length s mod 2 = 0 then failwith "predicate crash"
    else false
  in
  ignore (F.Shrink.shrink ~max_checks:30 ~errors ~keep "print(1); print(2); print(3);");
  check_bool "predicate crashes are counted" true (!errors > 0)

let test_corpus_il_sidecar_roundtrip () =
  let dir = Filename.temp_file "jitbull_corpus_il" "" in
  Sys.remove dir;
  let c = F.Corpus.create ~dir () in
  ignore (F.Corpus.add c ~il:"fake il payload" ~gain:3 "print(1);");
  ignore (F.Corpus.add c ~gain:1 "print(2);");
  let c' = F.Corpus.create ~dir () in
  let by_source src =
    List.find (fun (e : F.Corpus.entry) -> e.F.Corpus.source = src) (F.Corpus.entries c')
  in
  check_bool "il sidecar survives the round-trip" true
    ((by_source "print(1);").F.Corpus.il = Some "fake il payload");
  check_bool "entries without il stay bare" true ((by_source "print(2);").F.Corpus.il = None)

let test_guided_yield_accounting () =
  (* AST-only mode: no IL mutants, and valid ≤ mutants on both families *)
  let g = F.Harness.guided_campaign ~config:all_vulnerable ~rng_seed:3 ~max_execs:60 () in
  check_int "no IL mutants without --il" 0 g.F.Harness.g_il_yield.F.Harness.y_mutants;
  check_bool "ast valid bounded by mutants" true
    (g.F.Harness.g_ast_yield.F.Harness.y_valid
     <= g.F.Harness.g_ast_yield.F.Harness.y_mutants);
  check_bool "empty yield ratio is 1" true
    (F.Harness.yield_ratio g.F.Harness.g_il_yield = 1.0);
  (* IL mode: typed mutants appear and their yield clears the AST's *)
  let g = F.Harness.guided_campaign ~config:all_vulnerable ~il:true ~rng_seed:3 ~max_execs:250 () in
  let il = g.F.Harness.g_il_yield in
  check_bool "IL mode produced typed mutants" true (il.F.Harness.y_mutants > 0);
  check_bool "il valid bounded by mutants" true (il.F.Harness.y_valid <= il.F.Harness.y_mutants);
  check_bool "typed-IL yield ≥ 95%" true (F.Harness.yield_ratio il >= 0.95)

let test_oracle_classifications () =
  (match F.Oracle.run "print(1 + 1);" with
  | F.Oracle.Agree out -> check_string "agree output" "2\n" out
  | v -> Alcotest.fail (F.Oracle.verdict_summary v));
  (match F.Oracle.run "print(undefinedName);" with
  | F.Oracle.Runtime_error _ -> ()
  | v -> Alcotest.fail (F.Oracle.verdict_summary v));
  check_bool "agree is not a signal" false (F.Oracle.is_exploit_signal (F.Oracle.Agree ""));
  check_bool "crash is a signal" true (F.Oracle.is_exploit_signal (F.Oracle.Crash ""))

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
      Alcotest.test_case "generated programs parse" `Quick test_generated_programs_parse;
      Alcotest.test_case "benign campaign clean" `Slow test_benign_campaign_clean;
      Alcotest.test_case "aggressive clean on patched" `Slow test_aggressive_on_patched_engine_clean;
      Alcotest.test_case "aggressive finds exploits" `Slow test_aggressive_finds_exploits;
      Alcotest.test_case "auto-harvest neutralizes" `Slow test_auto_harvest_neutralizes;
      Alcotest.test_case "generalizes to fresh inputs" `Slow test_generalizes_to_fresh_inputs;
      Alcotest.test_case "oracle classifications" `Quick test_oracle_classifications;
      Alcotest.test_case "instrumented run artifacts" `Quick test_instrumented_run_artifacts;
      Alcotest.test_case "coverage dedup and gain" `Quick test_coverage_dedup_and_gain;
      Alcotest.test_case "mutants parse, deterministic" `Quick
        test_mutants_parse_and_are_deterministic;
      Alcotest.test_case "corpus persistence roundtrip" `Quick test_corpus_persistence_roundtrip;
      Alcotest.test_case "metamorphic clean on benign" `Slow test_metamorphic_clean_on_benign;
      Alcotest.test_case "metamorphic detects vulnerable engine" `Slow
        test_metamorphic_detects_vulnerable_engine;
      Alcotest.test_case "guided finds every CVE, beats blind" `Slow
        test_guided_finds_every_cve_faster_than_blind;
      Alcotest.test_case "guided coverage dominates blind" `Slow
        test_guided_coverage_dominates_blind;
      Alcotest.test_case "shrinker halves a real signal" `Slow
        test_shrinker_halves_a_real_signal;
      Alcotest.test_case "shrinker deterministic, errors counted" `Slow
        test_shrinker_deterministic_and_counts_errors;
      Alcotest.test_case "corpus .il sidecar roundtrip" `Quick
        test_corpus_il_sidecar_roundtrip;
      Alcotest.test_case "guided yield accounting" `Slow test_guided_yield_accounting;
    ] )
