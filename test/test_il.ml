(* Tests for the typed mutation IL: static semantics, lowering, the wire
   format, and the validity-by-construction promise (every seed and every
   mutant compiles, passes the bytecode verifier, and agrees across
   tiers). *)

open Helpers
module Il = Jitbull_fuzz.Il
module Il_mutate = Jitbull_fuzz.Il_mutate
module Oracle = Jitbull_fuzz.Oracle
module Verify = Jitbull_bytecode.Verify
module Prng = Jitbull_util.Prng

let fast cfg = { cfg with Engine.baseline_threshold = 2; ion_threshold = 4 }
let all_vulnerable = fast { Engine.default_config with Engine.vulns = VC.make VC.all }

let compile_src src = Compiler.compile (Parser.parse src)

let assert_valid ~name p =
  (match Il.typecheck p with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: seed does not typecheck: %s" name msg);
  let src = Il.to_source p in
  let bc =
    try compile_src src
    with exn ->
      Alcotest.failf "%s: lowered source does not compile: %s\n%s" name
        (Printexc.to_string exn) src
  in
  match Verify.check_program bc with
  | () -> src
  | exception Verify.Invalid msg ->
    Alcotest.failf "%s: bytecode fails verification: %s\n%s" name msg src

let test_seeds_valid () =
  List.iteri
    (fun i p -> ignore (assert_valid ~name:(Printf.sprintf "seed %d" i) p))
    (Il.seeds ())

let test_seeds_trip_oracle () =
  (* The four gadget seeds must actually reach the modeled bugs: with a
     fully vulnerable engine each one raises an exploit signal. *)
  let gadgets = List.filteri (fun i _ -> i < 4) (Il.seeds ()) in
  List.iteri
    (fun i p ->
      let src = Il.to_source p in
      let v = Oracle.run ~config:all_vulnerable src in
      if not (Oracle.is_exploit_signal v) then
        Alcotest.failf "gadget seed %d: no exploit signal (%s)\n%s" i
          (Oracle.verdict_kind v) src)
    gadgets

let test_seeds_benign_on_patched () =
  (* Against the fully patched engine the seeds must agree across tiers:
     no false-positive signals from the IL lowering itself. *)
  List.iteri
    (fun i p ->
      let src = Il.to_source p in
      let v = Oracle.run src in
      match v with
      | Oracle.Agree _ -> ()
      | v ->
        Alcotest.failf "seed %d: expected agreement on patched engine, got %s" i
          (Oracle.verdict_kind v))
    (Il.seeds ())

let test_serialize_round_trip () =
  List.iteri
    (fun i p ->
      let text = Il.serialize p in
      match Il.parse text with
      | Error msg -> Alcotest.failf "seed %d: parse failed: %s" i msg
      | Ok p' ->
        check_string
          (Printf.sprintf "seed %d round trip" i)
          text (Il.serialize p');
        check_string
          (Printf.sprintf "seed %d source stable" i)
          (Il.to_source p) (Il.to_source p'))
    (Il.seeds ())

let test_parse_rejects_garbage () =
  let cases =
    [
      ("empty", "");
      ("bad header", "nonsense\n");
      ("unterminated main", "il v1\nglobals 0\nmain\nprint v0\n");
      ("unknown instr", "il v1\nglobals 0\nmain\n  frobnicate v0\nendmain\n");
      ( "ill-typed",
        "il v1\nglobals 0\nmain\n  num v0 1\n  not v1 v0\nendmain\n" );
      ( "out-of-scope",
        "il v1\nglobals 0\nmain\n  print v3\nendmain\n" );
    ]
  in
  List.iter
    (fun (name, text) ->
      match Il.parse text with
      | Ok _ -> Alcotest.failf "%s: expected a parse/type error" name
      | Error _ -> ())
    cases

let test_typecheck_rejects () =
  let open Il in
  let main_prog main = { globals = 1; funcs = []; main } in
  let cases =
    [
      ("double def", main_prog [ Const (0, 1.); Const (0, 2.) ]);
      ("use before def", main_prog [ Print 0 ]);
      ( "counter write",
        main_prog [ Const (0, 1.); Loop (1, 4, [ Copy (1, 0) ]) ] );
      ( "loop bound too large",
        main_prog [ Loop (0, max_loop_bound + 1, []) ] );
      ( "loop_n over plain num",
        main_prog [ Const (0, 5.); Loop_n (1, 0, []) ] );
      ("bad slot", main_prog [ Gset_len (3, 1) ]);
      ("set_len too large", main_prog [ Array_of (0, []); Set_len (0, 999) ]);
      ("non-finite const", main_prog [ Const (0, Float.infinity) ]);
      ( "print in function",
        {
          globals = 0;
          funcs = [ { arity = 1; body = [ Print 0 ]; ret = None } ];
          main = [];
        } );
      ( "global read in function",
        {
          globals = 1;
          funcs = [ { arity = 0; body = [ Gget_len (0, 0) ]; ret = None } ];
          main = [];
        } );
      ( "self call",
        {
          globals = 0;
          funcs = [ { arity = 0; body = [ Call (0, 0, []) ]; ret = None } ];
          main = [];
        } );
      ( "ret out of scope",
        {
          globals = 0;
          funcs =
            [ { arity = 0; body = [ Loop (0, 2, [ Const (1, 1.) ]) ]; ret = Some 1 } ];
          main = [];
        } );
      ( "nesting too deep",
        main_prog
          [
            Loop (0, 2, [ Loop (1, 2, [ Loop (2, 2, [ Loop (3, 2, [ Loop (4, 2, []) ]) ]) ]) ]);
          ] );
    ]
  in
  List.iter
    (fun (name, p) ->
      match typecheck p with
      | Ok () -> Alcotest.failf "%s: expected a type error" name
      | Error _ -> ())
    cases

let test_lowering_runs () =
  (* Lowered seeds must run identically under interpreter and VM (the
     tier-agreement half is covered by the oracle tests above). *)
  List.iteri
    (fun i p ->
      let src = Il.to_source p in
      check_string
        (Printf.sprintf "seed %d interp = vm" i)
        (interp_output src) (vm_output src))
    (Il.seeds ())

(* --- mutators ----------------------------------------------------- *)

let mutant_pool ?(n = 60) () =
  let rng = Prng.create 4242 in
  let pool = ref (Il.seeds ()) in
  for _ = 1 to n do
    let base = List.nth !pool (Prng.int rng (List.length !pool)) in
    let donor = List.nth !pool (Prng.int rng (List.length !pool)) in
    match Il_mutate.mutate rng ~donor base with
    | Some p -> pool := p :: !pool
    | None -> ()
  done;
  !pool

let test_mutants_typecheck () =
  List.iteri
    (fun i p -> ignore (assert_valid ~name:(Printf.sprintf "mutant %d" i) p))
    (mutant_pool ())

let test_mutate_deterministic () =
  let run () =
    let rng = Prng.create 99 in
    let base = List.hd (Il.seeds ()) in
    let donor = List.nth (Il.seeds ()) 1 in
    let rec go n p =
      if n = 0 then p
      else
        match Il_mutate.mutate rng ~donor p with
        | Some p' -> go (n - 1) p'
        | None -> go (n - 1) p
    in
    Il.serialize (go 20 base)
  in
  check_string "same seed, same mutants" (run ()) (run ())

let qcheck_mutants_valid =
  (* The tentpole invariant: any mutant chain from the seeds typechecks,
     compiles, passes the bytecode verifier and agrees across all tiers
     on the patched engine. *)
  let gen =
    QCheck.Gen.(
      map2 (fun seed steps -> (seed, steps)) (int_bound 1_000_000) (int_range 1 8))
  in
  let arb = QCheck.make ~print:(fun (s, n) -> Printf.sprintf "seed=%d steps=%d" s n) gen in
  QCheck.Test.make ~count:(qcheck_count 20) ~name:"il mutants valid and tier-agreeing" arb
    (fun (seed, steps) ->
      let rng = Prng.create seed in
      let seeds = Il.seeds () in
      let rec go n p =
        if n = 0 then p
        else
          let donor = List.nth seeds (Prng.int rng (List.length seeds)) in
          match Il_mutate.mutate rng ~donor p with
          | Some p' -> go (n - 1) p'
          | None -> go (n - 1) p
      in
      let p = go steps (List.nth seeds (Prng.int rng (List.length seeds))) in
      (match Il.typecheck p with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "mutant does not typecheck: %s" msg);
      let src = Il.to_source p in
      let bc =
        try compile_src src
        with exn ->
          QCheck.Test.fail_reportf "mutant does not compile: %s\n%s"
            (Printexc.to_string exn) src
      in
      (match Verify.check_program bc with
      | () -> ()
      | exception Verify.Invalid msg ->
        QCheck.Test.fail_reportf "mutant fails bytecode verification: %s\n%s" msg src);
      match Oracle.run src with
      | Oracle.Agree _ -> true
      | v ->
        QCheck.Test.fail_reportf "mutant diverges on patched engine: %s\n%s"
          (Oracle.verdict_kind v) src)

let suite =
  ( "il",
    [
      Alcotest.test_case "seeds valid" `Quick test_seeds_valid;
      Alcotest.test_case "seeds trip oracle" `Quick test_seeds_trip_oracle;
      Alcotest.test_case "seeds benign on patched" `Quick test_seeds_benign_on_patched;
      Alcotest.test_case "serialize round trip" `Quick test_serialize_round_trip;
      Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
      Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
      Alcotest.test_case "lowering runs" `Quick test_lowering_runs;
      Alcotest.test_case "mutants typecheck" `Quick test_mutants_typecheck;
      Alcotest.test_case "mutate deterministic" `Quick test_mutate_deterministic;
      qtest qcheck_mutants_valid;
    ] )
