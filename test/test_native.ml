(* The native x86-64 Ion backend: encoder golden bytes, NaN-box codec,
   native==executor differential equivalence, the W^X code-page
   lifecycle, and the structural guarantee that a Forbid verdict never
   maps a page.

   Every test that needs to *run* generated code is guarded on
   [Native.enabled ()], so the suite stays green on non-x86-64 hosts and
   under the forced-fallback CI leg (JITBULL_NO_NATIVE=1) — there the
   equivalence tests degenerate to executor==executor, which is exactly
   the fallback contract. *)

open Helpers
module Native = Jitbull_native.Native
module Exec_mem = Jitbull_native.Exec_mem
module Asm = Jitbull_native.Asm
module Nanbox = Jitbull_native.Nanbox
module Value = Jitbull_runtime.Value
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull
module V = Jitbull_vdc.Demonstrators
module Obs = Jitbull_obs.Obs
module Metrics = Jitbull_obs.Metrics
module F = Jitbull_fuzz
module Op = Jitbull_bytecode.Op

let when_native f () = if Native.enabled () then f ()

(* ---- encoder golden bytes ---- *)

let hex b =
  String.concat " "
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let golden name expected build =
  let a = Asm.create () in
  build a;
  check_string name expected (hex (Asm.finalize a))

let test_encoder_golden () =
  golden "mov rax, [rdi+24]" "48 8b 87 18 00 00 00" (fun a ->
      Asm.mov_r_slot a Asm.rax 3);
  golden "mov [rdi+24], rcx" "48 89 8f 18 00 00 00" (fun a ->
      Asm.mov_slot_r a 3 Asm.rcx);
  golden "mov r8, [rdi+0]" "4c 8b 87 00 00 00 00" (fun a ->
      Asm.mov_r_slot a Asm.r8 0);
  golden "movabs rcx, canonical-NaN" "48 b9 00 00 00 00 00 00 f8 7f" (fun a ->
      Asm.movabs a Asm.rcx 0x7FF8000000000000L);
  golden "movabs r11, imm" "49 bb ff 00 00 00 00 00 00 00" (fun a ->
      Asm.movabs a Asm.r11 0xFFL);
  golden "mov eax, imm32" "b8 12 00 00 00" (fun a -> Asm.mov_eax_imm a 0x12);
  golden "ret" "c3" Asm.ret;
  golden "addsd xmm0, xmm1" "f2 0f 58 c1" (fun a -> Asm.addsd a Asm.xmm0 Asm.xmm1);
  golden "mulsd xmm1, xmm0" "f2 0f 59 c8" (fun a -> Asm.mulsd a Asm.xmm1 Asm.xmm0);
  golden "ucomisd xmm0, xmm1" "66 0f 2e c1" (fun a ->
      Asm.ucomisd a Asm.xmm0 Asm.xmm1);
  golden "cvttsd2si rax, xmm0" "f2 48 0f 2c c0" (fun a ->
      Asm.cvttsd2si a Asm.rax Asm.xmm0);
  golden "cvtsi2sd xmm1, rax" "f2 48 0f 2a c8" (fun a ->
      Asm.cvtsi2sd a Asm.xmm1 Asm.rax);
  golden "movq xmm0, rcx" "66 48 0f 6e c1" (fun a -> Asm.movq_x_r a Asm.xmm0 Asm.rcx);
  golden "movq rcx, xmm0" "66 48 0f 7e c1" (fun a -> Asm.movq_r_x a Asm.rcx Asm.xmm0);
  golden "sete al" "0f 94 c0" (fun a -> Asm.setcc a Asm.cc_e Asm.rax);
  golden "movzx eax, al" "0f b6 c0" Asm.movzx_eax_al;
  golden "shl edx, cl" "d3 e2" (fun a -> Asm.shl_cl32 a Asm.rdx);
  golden "sar edx, cl" "d3 fa" (fun a -> Asm.sar_cl32 a Asm.rdx);
  golden "movsxd r11, eax" "4c 63 d8" (fun a -> Asm.movsxd a ~dst:Asm.r11 ~src:Asm.rax)

let test_encoder_rel32_patching () =
  (* forward: the 6-byte jcc skips the first ret (rel32 = +1) *)
  golden "je +1 over a ret" "0f 84 01 00 00 00 c3 c3" (fun a ->
      let l = Asm.new_label a in
      Asm.jcc a Asm.cc_e l;
      Asm.ret a;
      Asm.bind a l;
      Asm.ret a);
  (* backward: jmp to position 0 from a hole ending at 6 (rel32 = -6) *)
  golden "jmp -6 to entry" "c3 e9 fa ff ff ff" (fun a ->
      let l = Asm.new_label a in
      Asm.bind a l;
      Asm.ret a;
      Asm.jmp a l);
  (* an unbound label with holes must be rejected, not emitted as 0 *)
  let a = Asm.create () in
  let l = Asm.new_label a in
  Asm.jmp a l;
  check_bool "unbound label rejected" true
    (match Asm.finalize a with
    | exception Failure _ -> true
    | _ -> false)

(* ---- NaN-box codec ---- *)

let test_nanbox_specials () =
  let side = Nanbox.side_create () in
  let bits f = Int64.bits_of_float f in
  List.iter
    (fun f ->
      check_bool
        (Printf.sprintf "number %h round-trips bit-exactly" f)
        true
        (Nanbox.encode side (Value.Number f) = bits f))
    [ 0.0; -0.0; 1.5; -1.5; Float.infinity; Float.neg_infinity; Float.max_float ];
  (* every NaN payload canonicalizes on encode; decode is still NaN *)
  let noisy_nan = Int64.float_of_bits 0x7FF0000000000BADL in
  check_bool "NaN canonicalized" true
    (Nanbox.encode side (Value.Number noisy_nan) = Nanbox.canonical_nan);
  (match Nanbox.decode side Nanbox.canonical_nan with
  | Value.Number f -> check_bool "canonical NaN decodes to NaN" true (Float.is_nan f)
  | v -> Alcotest.fail ("canonical NaN decoded to " ^ Value.type_name v));
  (* singletons *)
  List.iter
    (fun (v, b) ->
      check_bool (Value.to_display v ^ " encodes to its singleton") true
        (Nanbox.encode side v = b);
      check_bool (Value.to_display v ^ " decodes back") true (Nanbox.decode side b = v))
    [
      (Value.Undefined, Nanbox.bits_undefined);
      (Value.Null, Nanbox.bits_null);
      (Value.Bool false, Nanbox.bits_false);
      (Value.Bool true, Nanbox.bits_true);
    ];
  (* the is-number boundary: everything unsigned-below bits_min_tag is a
     number (even non-canonical negative NaN patterns, unreachable after
     encode), everything at or above is a tag *)
  check_bool "just below the tag space is a number" true
    (Nanbox.is_number (Int64.pred Nanbox.bits_min_tag));
  check_bool "bits_min_tag is not a number" false (Nanbox.is_number Nanbox.bits_min_tag);
  check_bool "undefined is not a number" false (Nanbox.is_number Nanbox.bits_undefined);
  check_bool "true is not a number" false (Nanbox.is_number Nanbox.bits_true);
  check_bool "-1.0 is a number" true (Nanbox.is_number (bits (-1.0)))

let test_nanbox_heap_values () =
  let side = Nanbox.side_create () in
  (* arrays and functions ride in the payload, not the side table *)
  check_bool "array round-trips" true
    (Nanbox.decode side (Nanbox.encode side (Value.Array 42)) = Value.Array 42);
  check_bool "function round-trips" true
    (Nanbox.decode side (Nanbox.encode side (Value.Function 7)) = Value.Function 7);
  (* strings go through the side table and stay GC-rooted *)
  let b1 = Nanbox.encode side (Value.String "hello") in
  let b2 = Nanbox.encode side (Value.String "world") in
  check_bool "string 1 round-trips" true
    (Nanbox.decode side b1 = Value.String "hello");
  check_bool "string 2 round-trips" true
    (Nanbox.decode side b2 = Value.String "world");
  (* side_reset keeps the constant prefix and drops activations' refs *)
  let side2 = Nanbox.side_create () in
  let c = Nanbox.encode side2 (Value.String "const") in
  Nanbox.side_reset side2 ~preload:1;
  check_bool "preload survives reset" true
    (Nanbox.decode side2 c = Value.String "const");
  let again = Nanbox.encode side2 (Value.String "fresh") in
  check_bool "slots reused after reset" true
    (Nanbox.decode side2 again = Value.String "fresh")

let qcheck_nanbox_roundtrip =
  QCheck.Test.make ~count:(qcheck_count 500) ~name:"nanbox float round-trip"
    QCheck.float (fun f ->
      let side = Nanbox.side_create () in
      let b = Nanbox.encode side (Value.Number f) in
      Nanbox.is_number b
      &&
      match Nanbox.decode side b with
      | Value.Number g ->
        if Float.is_nan f then Float.is_nan g
        else Int64.bits_of_float g = Int64.bits_of_float f
      | _ -> false)

(* ---- W^X lifecycle (Exec_mem) ---- *)

let maps_line_for (addr : nativeint) =
  if not (Sys.file_exists "/proc/self/maps") then None
  else begin
    let prefix = Printf.sprintf "%nx-" addr in
    let ic = open_in "/proc/self/maps" in
    let found = ref None in
    (try
       while true do
         let line = input_line ic in
         if String.length line > String.length prefix
            && String.equal (String.sub line 0 (String.length prefix)) prefix
         then found := Some line
       done
     with End_of_file -> ());
    close_in ic;
    !found
  end

let test_exec_mem_wx_lifecycle =
  when_native (fun () ->
      let before = Exec_mem.stats () in
      (* mov eax, 0x42; ret *)
      let a = Asm.create () in
      Asm.mov_eax_imm a 0x42;
      Asm.ret a;
      let region = Exec_mem.install (Asm.finalize a) in
      let during = Exec_mem.stats () in
      check_int "one map" (before.Exec_mem.s_maps_total + 1) during.Exec_mem.s_maps_total;
      check_int "one more live region" (before.Exec_mem.s_live_regions + 1)
        during.Exec_mem.s_live_regions;
      check_bool "region flagged mapped" true region.Exec_mem.mapped;
      (* the page is executable-not-writable, never W+X *)
      (match maps_line_for region.Exec_mem.addr with
      | None -> () (* no /proc (non-Linux): the mprotect contract stands alone *)
      | Some line ->
        check_bool ("installed page is r-x in: " ^ line) true
          (String.length line > 0
          &&
          let fields = String.split_on_char ' ' line in
          match List.nth_opt fields 1 with
          | Some perms ->
            String.equal (String.sub perms 0 4) "r-xp"
          | None -> false));
      (* the sealed page actually runs *)
      let regs = Exec_mem.make_regfile 4 in
      check_int "generated code returns" 0x42 (Exec_mem.call region 0 regs);
      Exec_mem.release region;
      check_bool "unmapped" false region.Exec_mem.mapped;
      let after = Exec_mem.stats () in
      check_int "one unmap" (during.Exec_mem.s_unmaps_total + 1)
        after.Exec_mem.s_unmaps_total;
      check_int "live count restored" before.Exec_mem.s_live_regions
        after.Exec_mem.s_live_regions;
      check_bool "page gone from the address space" true
        (maps_line_for region.Exec_mem.addr = None);
      (* release is idempotent *)
      Exec_mem.release region;
      check_int "double release unmaps once"
        after.Exec_mem.s_unmaps_total
        (Exec_mem.stats ()).Exec_mem.s_unmaps_total)

(* ---- native == executor differential equivalence ---- *)

let native_cfg = { jit_config with Engine.native = true }
let executor_cfg = { jit_config with Engine.native = false }

(* Semantic corners the lowering handles specially: each runs hot enough
   to reach Ion, so with the native backend enabled the loop body is
   machine code. *)
let edge_corpus =
  [
    (* NaN falls through a bounds check without bailing (unordered jb) *)
    "function f(a, i) { return a[i]; } var x = [1,2,3]; var s = '';\n\
     for (var k = 0; k < 20; k = k + 1) { s = f(x, 0/0); } print(s);";
    (* -0 is falsy and prints as 0 *)
    "function f(x) { if (x) { return 1; } return -x; }\n\
     var r = 0; for (var k = 0; k < 20; k = k + 1) { r = f(-0); } print(r);";
    (* int32 edges: wraparound, negative shift operands, >>> zero-fill *)
    "function f(n) { return ((n | 0) + (1 << 30) + (1 << 30)) | 0; }\n\
     var r = 0; for (var k = 0; k < 20; k = k + 1) { r = f(k); } print(r);";
    "function f(h) { return (h << 33) + (h >> 1) + (h >>> 1); }\n\
     var r = 0; for (var k = 0; k < 20; k = k + 1) { r = f(-5); } print(r);";
    "function f(x) { return -x >>> 0; }\n\
     var r = 0; for (var k = 0; k < 20; k = k + 1) { r = f(1); } print(r);";
    (* non-int32 doubles exit to the host for bit ops, same as executor *)
    "function f(x) { return (x & 3) + (x | 0); }\n\
     var r = 0; for (var k = 0; k < 20; k = k + 1) { r = f(2.5); } print(r);";
    (* NaN comparisons: every relational is false, != is true *)
    "function f(x) { var c = 0; if (x < 1) c = c + 1; if (x >= 1) c = c + 2;\n\
     if (x == x) c = c + 4; if (x != x) c = c + 8; return c; }\n\
     var r = 0; for (var k = 0; k < 20; k = k + 1) { r = f(0/0); } print(r);";
    (* truthiness across the boxed kinds *)
    "function f(x) { if (x) { return 1; } return 0; }\n\
     var s = '';\n\
     for (var k = 0; k < 20; k = k + 1) {\n\
       s = '' + f(0) + f(1) + f('') + f('a') + f(null) + f(undefined) + f([]) + f(0/0);\n\
     } print(s);";
    (* a guard failure after tier-up: identical bailout + replay *)
    "function f(x) { return x + 1; }\n\
     var r = 0; for (var k = 0; k < 20; k = k + 1) { r = f(k); }\n\
     print(f('s')); print(r);";
    (* heavy ops (strings, calls, arrays) exit to the host mid-loop *)
    "function g(x) { return x * 2; }\n\
     function f(n) { var s = 0; var a = [1,2,3];\n\
       for (var i = 0; i < n; i = i + 1) { s = s + g(i) + a[i % 3]; }\n\
       return s + 'x'; }\n\
     for (var k = 0; k < 10; k = k + 1) { f(20); } print(f(20));";
  ]

let test_edge_corpus_equivalence () =
  List.iter
    (fun src ->
      let reference = interp_output src in
      let out_n, tn = Engine.run_source native_cfg src in
      let out_e, te = Engine.run_source executor_cfg src in
      check_string "native matches interpreter" reference out_n;
      check_string "executor matches interpreter" reference out_e;
      let sn = Engine.stats tn and se = Engine.stats te in
      check_int "same ion compiles" se.Engine.ion_compiles sn.Engine.ion_compiles;
      check_int "same bailouts" se.Engine.bailouts sn.Engine.bailouts;
      check_int "executor leg installs no native code" 0 se.Engine.native_installs;
      if Native.enabled () && sn.Engine.ion_compiles > 0 then
        check_bool "native leg ran machine code" true (sn.Engine.native_installs > 0))
    edge_corpus

let qcheck_native_vs_executor =
  QCheck.Test.make ~count:(qcheck_count 60) ~name:"native == executor on random programs"
    QCheck.(pair (int_bound 5000) bool)
    (fun (seed, aggressive) ->
      let src =
        if aggressive then F.Generator.aggressive ~seed else F.Generator.benign ~seed
      in
      let run cfg = try fst (Engine.run_source cfg src) with e -> "!" ^ Printexc.to_string e in
      String.equal (run native_cfg) (run executor_cfg))

let test_metamorphic_tier_agreement () =
  (* the oracle's four-way leg: interp == vm == native == executor *)
  List.iter
    (fun src ->
      match F.Oracle.check_metamorphic ~subsets:[] ~jobs:0 src with
      | [] -> ()
      | v :: _ ->
        Alcotest.fail
          (Printf.sprintf "tier agreement violated (%s): %s" v.F.Oracle.mv_invariant
             v.F.Oracle.mv_detail))
    [
      "function f(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s = s + i * 1.5; } return s; }\n\
       for (var k = 0; k < 12; k = k + 1) { print(f(k)); }";
      List.nth edge_corpus 0;
      List.nth edge_corpus 3;
    ]

(* ---- engine code-page lifecycle ---- *)

let func_idx eng name =
  let funcs = (Engine.vm eng).Vm.program.Op.funcs in
  let rec go i =
    if i >= Array.length funcs then Alcotest.fail ("no function " ^ name)
    else if String.equal funcs.(i).Op.name name then i
    else go (i + 1)
  in
  go 0

let test_engine_installs_and_exits =
  when_native (fun () ->
      let src =
        "function f(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n\
         for (var k = 0; k < 12; k = k + 1) { print(f(10)); }"
      in
      let out, eng = Engine.run_source native_cfg src in
      check_string "output" (interp_output src) out;
      let idx = func_idx eng "f" in
      check_bool "f reached Ion" true (Engine.tier_of eng idx = Engine.Ion);
      match Engine.native_code_of eng idx with
      | None -> Alcotest.fail "no native code installed for f"
      | Some code ->
        let region = Native.region code in
        check_bool "code page live while installed" true region.Exec_mem.mapped;
        check_bool "code bytes emitted" true (Native.code_size code > 0);
        let exits = Native.exits code in
        check_bool "hot calls returned natively" true (exits.Native.t_return > 0))

let test_engine_blacklist_releases_pages =
  when_native (fun () ->
      let before = Exec_mem.stats () in
      (* warmed on in-bounds reads, then hammered out of bounds: repeated
         guard failures blacklist f and must unmap its code page *)
      let cfg = { native_cfg with Engine.max_bailouts = 2 } in
      let src =
        "function f(a, i) { return a[i]; } var x = [1,2,3]; var s = 0;\n\
         for (var k = 0; k < 30; k = k + 1) { s = f(x, 5); } print(s);"
      in
      let out, eng = Engine.run_source cfg src in
      check_string "OOB read is undefined" "undefined\n" out;
      let idx = func_idx eng "f" in
      check_bool "f blacklisted" true (Engine.tier_of eng idx = Engine.Blacklisted);
      check_bool "native code dropped" true (Engine.native_code_of eng idx = None);
      let after = Exec_mem.stats () in
      check_bool "pages were mapped" true
        (after.Exec_mem.s_maps_total > before.Exec_mem.s_maps_total);
      check_bool "the blacklisted function's page was unmapped" true
        (after.Exec_mem.s_unmaps_total > before.Exec_mem.s_unmaps_total))

(* ---- a Forbid verdict never maps a page ---- *)

let test_forbid_maps_no_page =
  when_native (fun () ->
      (* structural check first: an analyzer that forbids everything must
         leave the process-global map counter untouched *)
      let forbid_all ~ctx:_ ~func_index:_ ~name:_ ~trace:_ = Engine.Forbid_jit in
      let cfg = { native_cfg with Engine.analyzer = Some forbid_all } in
      let src =
        "function f(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n\
         for (var k = 0; k < 12; k = k + 1) { print(f(10)); }"
      in
      let before = (Exec_mem.stats ()).Exec_mem.s_maps_total in
      let out, eng = Engine.run_source cfg src in
      check_string "forbidden run still correct" (interp_output src) out;
      let st = Engine.stats eng in
      check_bool "verdict was Forbid" true (st.Engine.nr_nojit > 0);
      check_int "no native installs" 0 st.Engine.native_installs;
      check_int "no code page mapped for a forbidden compile" before
        (Exec_mem.stats ()).Exec_mem.s_maps_total)

let test_forbid_via_harvested_cve =
  when_native (fun () ->
      (* the paper's flow: harvest a CVE's DNA, run its exploit under the
         go/no-go policy — the exploit's compile draws a non-Allow verdict
         (Disable recompile or Forbid), and every mapped page corresponds
         to an install the policy admitted: nothing is mapped for the
         compile the verdict rejected *)
      let d = V.find VC.CVE_2019_9810 in
      let vulns = VC.make [ d.V.cve ] in
      let db = Db.create () in
      check_bool "harvest yields entries" true
        (Db.harvest db ~cve:d.V.name ~vulns d.V.source > 0);
      let cfg = Jitbull.config ~vulns db in
      let before = (Exec_mem.stats ()).Exec_mem.s_maps_total in
      let _, eng = Engine.run_source cfg d.V.source in
      let st = Engine.stats eng in
      check_bool "the exploit's compile drew a non-Allow verdict" true
        (st.Engine.nr_nojit + st.Engine.nr_disjit > 0);
      check_int "maps == policy-admitted native installs, nothing else"
        (before + st.Engine.native_installs)
        (Exec_mem.stats ()).Exec_mem.s_maps_total)

(* ---- forced fallback and observability ---- *)

let test_env_forced_fallback () =
  if not (Native.available ()) then ()
  else begin
    let prev = Option.value (Sys.getenv_opt "JITBULL_NO_NATIVE") ~default:"" in
    Unix.putenv "JITBULL_NO_NATIVE" "1";
    Fun.protect
      ~finally:(fun () -> Unix.putenv "JITBULL_NO_NATIVE" prev)
      (fun () ->
        check_bool "backend reports disabled" false (Native.enabled ());
        let obs = Obs.create () in
        let cfg = { native_cfg with Engine.obs = Some obs } in
        let src =
          "function f(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n\
           for (var k = 0; k < 12; k = k + 1) { print(f(10)); }"
        in
        let out, eng = Engine.run_source cfg src in
        check_string "fallback output identical" (interp_output src) out;
        check_int "no native installs under JITBULL_NO_NATIVE" 0
          (Engine.stats eng).Engine.native_installs;
        let view = Obs.view (Some obs) in
        check_bool "fallback cause counted" true
          (match Metrics.find_counter view "native.fallback_total.env" with
          | Some n -> n > 0
          | None -> false))
  end

let test_obs_counters =
  when_native (fun () ->
      let obs = Obs.create () in
      let cfg = { native_cfg with Engine.obs = Some obs } in
      let src =
        "function f(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n\
         for (var k = 0; k < 12; k = k + 1) { print(f(10)); }"
      in
      let _, eng = Engine.run_source cfg src in
      check_bool "native installed" true ((Engine.stats eng).Engine.native_installs > 0);
      let view = Obs.view (Some obs) in
      let counter name = Option.value (Metrics.find_counter view name) ~default:0 in
      check_bool "native.compiled_funcs" true (counter "native.compiled_funcs" > 0);
      check_bool "native.code_bytes" true (counter "native.code_bytes" > 0);
      check_bool "native.exits_total.return" true
        (counter "native.exits_total.return" > 0);
      check_bool "native.emit histogram populated" true
        (match Metrics.find_histogram view "native.emit" with
        | Some h -> h.Metrics.hv_count > 0
        | None -> false))

let suite =
  ( "native",
    [
      Alcotest.test_case "encoder golden bytes" `Quick test_encoder_golden;
      Alcotest.test_case "encoder rel32 patching" `Quick test_encoder_rel32_patching;
      Alcotest.test_case "nanbox specials" `Quick test_nanbox_specials;
      Alcotest.test_case "nanbox heap values" `Quick test_nanbox_heap_values;
      qtest qcheck_nanbox_roundtrip;
      Alcotest.test_case "exec_mem W^X lifecycle" `Quick test_exec_mem_wx_lifecycle;
      Alcotest.test_case "edge corpus equivalence" `Quick test_edge_corpus_equivalence;
      qtest qcheck_native_vs_executor;
      Alcotest.test_case "metamorphic tier agreement" `Quick
        test_metamorphic_tier_agreement;
      Alcotest.test_case "engine installs and exits" `Quick test_engine_installs_and_exits;
      Alcotest.test_case "blacklist releases pages" `Quick
        test_engine_blacklist_releases_pages;
      Alcotest.test_case "forbid maps no page" `Quick test_forbid_maps_no_page;
      Alcotest.test_case "forbid via harvested CVE" `Quick test_forbid_via_harvested_cve;
      Alcotest.test_case "env forced fallback" `Quick test_env_forced_fallback;
      Alcotest.test_case "obs counters" `Quick test_obs_counters;
    ] )
