(* The observability layer: metrics semantics, span nesting, ring-buffer
   eviction, JSON-lines round-trip, and the engine integration — a VDC
   variant must produce a structured [policy_decide] event whose pass
   list matches the monitor's record. *)

open Helpers
module Obs = Jitbull_obs.Obs
module Metrics = Jitbull_obs.Metrics
module Tracer = Jitbull_obs.Tracer
module Jsonx = Jitbull_obs.Jsonx
module V = Jitbull_vdc.Demonstrators
module Variants = Jitbull_vdc.Variants
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let check_float = Alcotest.(check (float 1e-9))

(* A deterministic clock: every reading advances time by [step]. *)
let fake_clock ?(step = 0.001) () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. step;
    !t

(* ---- metrics ---- *)

let test_counter_semantics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  check_int "counter accumulates" 42 (Metrics.counter_value c);
  (* get-or-create returns the same instrument *)
  Metrics.incr (Metrics.counter m "a");
  check_int "same instrument" 43 (Metrics.counter_value c);
  let g = Metrics.gauge m "g" in
  Metrics.set g 2.5;
  Metrics.set g 1.5;
  check_float "gauge keeps last" 1.5 (Metrics.gauge_value g);
  let view = Metrics.snapshot m in
  check_int "snapshot counter value" 43 (Option.get (Metrics.find_counter view "a"))

let test_histogram_semantics () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0; 4.0 |] m "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  let view = Metrics.snapshot m in
  let hv = Option.get (Metrics.find_histogram view "h") in
  check_int "count" 5 hv.Metrics.hv_count;
  check_float "sum" 106.0 hv.Metrics.hv_sum;
  check_float "min" 0.5 hv.Metrics.hv_min;
  check_float "max" 100.0 hv.Metrics.hv_max;
  (match hv.Metrics.hv_buckets with
  | [ (b1, c1); (b2, c2); (b3, c3); (binf, c4) ] ->
    check_float "bound 1" 1.0 b1;
    check_int "le 1.0 (0.5 and the boundary value 1.0)" 2 c1;
    check_float "bound 2" 2.0 b2;
    check_int "le 2.0" 1 c2;
    check_float "bound 3" 4.0 b3;
    check_int "le 4.0" 1 c3;
    check_bool "last bound is +inf" true (not (Float.is_finite binf));
    check_int "overflow bucket" 1 c4
  | _ -> Alcotest.fail "expected 4 buckets");
  (* quantiles stay within the observed range and are ordered *)
  check_bool "p50 <= p90" true (hv.Metrics.hv_p50 <= hv.Metrics.hv_p90);
  check_bool "p90 <= p99" true (hv.Metrics.hv_p90 <= hv.Metrics.hv_p99);
  check_bool "p99 <= max" true (hv.Metrics.hv_p99 <= hv.Metrics.hv_max);
  check_bool "p50 >= min" true (hv.Metrics.hv_p50 >= hv.Metrics.hv_min)

let test_prometheus_render () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "vm.calls") 7;
  Metrics.observe (Metrics.histogram ~bounds:[| 0.1 |] m "lat") 0.05;
  let text = Metrics.render_prometheus (Metrics.snapshot m) in
  let contains needle =
    let nl = String.length needle and l = String.length text in
    let rec go i = i + nl <= l && (String.equal (String.sub text i nl) needle || go (i + 1)) in
    go 0
  in
  check_bool "sanitized counter line" true (contains "vm_calls 7");
  check_bool "bucket line" true (contains "lat_bucket{le=\"0.1\"} 1");
  check_bool "+Inf bucket" true (contains "lat_bucket{le=\"+Inf\"} 1");
  check_bool "count line" true (contains "lat_count 1")

(* ---- tracer ---- *)

let test_span_nesting_and_durations () =
  let obs = Some (Obs.create ~clock:(fake_clock ()) ()) in
  let result =
    Obs.span obs "outer" (fun () ->
        Obs.event obs "inside";
        Obs.span obs "inner" (fun () -> 21 * 2))
  in
  check_int "span returns the body's value" 42 result;
  let events = Tracer.events (Obs.tracer (Option.get obs)) in
  check_int "three events" 3 (List.length events);
  let find name = List.find (fun (e : Tracer.event) -> String.equal e.Tracer.name name) events in
  let outer = find "outer" and inner = find "inner" and inside = find "inside" in
  check_int "outer depth" 1 outer.Tracer.depth;
  check_int "inner depth" 2 inner.Tracer.depth;
  check_int "point event depth" 1 inside.Tracer.depth;
  check_bool "inner recorded before outer closes" true (inner.Tracer.seq < outer.Tracer.seq);
  check_bool "durations non-negative" true
    (outer.Tracer.dur >= 0.0 && inner.Tracer.dur >= 0.0);
  (* with the fake clock every reading advances, so the enclosing span is
     strictly longer than the nested one *)
  check_bool "outer dur > inner dur" true (outer.Tracer.dur > inner.Tracer.dur);
  (* the span durations feed <name>.seconds histograms *)
  let view = Obs.view obs in
  check_bool "outer histogram exists" true
    (Option.is_some (Metrics.find_histogram view "outer.seconds"))

let test_span_duration_monotonicity () =
  (* deeper nesting = more clock reads = longer measured spans; durations
     of the same-shape span must be non-decreasing in nesting depth *)
  let obs = Some (Obs.create ~clock:(fake_clock ()) ()) in
  let rec nest d = if d = 0 then () else Obs.span obs (Printf.sprintf "lvl%d" d) (fun () -> nest (d - 1)) in
  nest 4;
  let events = Tracer.events (Obs.tracer (Option.get obs)) in
  let dur name =
    (List.find (fun (e : Tracer.event) -> String.equal e.Tracer.name name) events).Tracer.dur
  in
  check_bool "lvl4 >= lvl3" true (dur "lvl4" >= dur "lvl3");
  check_bool "lvl3 >= lvl2" true (dur "lvl3" >= dur "lvl2");
  check_bool "lvl2 >= lvl1" true (dur "lvl2" >= dur "lvl1")

let test_ring_eviction () =
  let tr = Tracer.create ~capacity:4 ~clock:(fake_clock ()) () in
  for i = 1 to 10 do
    Tracer.event tr (Printf.sprintf "e%d" i)
  done;
  check_int "total recorded" 10 (Tracer.total_recorded tr);
  let events = Tracer.events tr in
  check_int "ring bounded" 4 (List.length events);
  Alcotest.(check (list string))
    "newest four, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun (e : Tracer.event) -> e.Tracer.name) events);
  let seqs = List.map (fun (e : Tracer.event) -> e.Tracer.seq) events in
  check_bool "seq strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 3) seqs) (List.tl seqs))

(* ---- correlation: ids, parents, cross-domain anchors ---- *)

(* Concurrency width for the multi-domain tracer tests; CI re-runs the
   suite with JITBULL_TEST_JOBS=1 and 2 (same variable as test_perf). *)
let test_jobs =
  match Sys.getenv_opt "JITBULL_TEST_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 2)
  | None -> 2

let contains_sub hay needle =
  let nl = String.length needle and l = String.length hay in
  let rec go i =
    i + nl <= l && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

let test_span_ids_and_parents () =
  let tr = Tracer.create ~clock:(fake_clock ()) () in
  check_bool "no open span at top level" true (Tracer.current_span tr = None);
  let outer_seen = ref 0 in
  Tracer.with_span tr "outer" (fun () ->
      outer_seen := Option.get (Tracer.current_span tr);
      Tracer.event tr "point";
      Tracer.with_span tr "inner" (fun () ->
          check_bool "inner is now innermost" true
            (Tracer.current_span tr <> Some !outer_seen)));
  (* the explicit cross-domain edge: anchor on this domain, span under it
     from a helper domain *)
  let anchor = Tracer.alloc_id tr in
  Tracer.event tr ~id:anchor "tier_up";
  Domain.join
    (Domain.spawn (fun () ->
         Tracer.with_span tr ~parent:anchor "helper" (fun () ->
             Tracer.event tr "child")));
  let events = Tracer.events tr in
  let find name =
    List.find (fun (e : Tracer.event) -> String.equal e.Tracer.name name) events
  in
  let outer = find "outer" and inner = find "inner" and point = find "point" in
  let tier_up = find "tier_up" and helper = find "helper" and child = find "child" in
  check_int "current_span saw outer's id" outer.Tracer.id !outer_seen;
  check_bool "outer is top-level" true (outer.Tracer.parent = None);
  check_bool "point parents to outer" true (point.Tracer.parent = Some outer.Tracer.id);
  check_bool "inner parents to outer" true (inner.Tracer.parent = Some outer.Tracer.id);
  check_int "anchor id recorded as given" anchor tier_up.Tracer.id;
  check_bool "helper-domain span parents to the anchor" true
    (helper.Tracer.parent = Some anchor);
  check_bool "helper's child parents to helper (own-domain stack)" true
    (child.Tracer.parent = Some helper.Tracer.id);
  let ids = List.map (fun (e : Tracer.event) -> e.Tracer.id) events in
  check_bool "ids are non-zero" true (List.for_all (fun i -> i > 0) ids);
  check_int "ids are unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_ring_wraparound_concurrent () =
  let cap = 32 and per_domain = 50 in
  let tr = Tracer.create ~capacity:cap ~clock:(fake_clock ()) () in
  let worker d () =
    for i = 1 to per_domain do
      Tracer.with_span tr (Printf.sprintf "d%d_s%d" d i) (fun () ->
          Tracer.event tr (Printf.sprintf "d%d_e%d" d i))
    done
  in
  List.iter Domain.join (List.init test_jobs (fun d -> Domain.spawn (worker d)));
  check_int "every event counted across domains" (test_jobs * per_domain * 2)
    (Tracer.total_recorded tr);
  let events = Tracer.events tr in
  check_int "ring stays bounded" cap (List.length events);
  let seqs = List.map (fun (e : Tracer.event) -> e.Tracer.seq) events in
  check_bool "seqs strictly increasing oldest-first" true
    (fst (List.fold_left (fun (ok, prev) s -> (ok && s > prev, s)) (true, -1) seqs));
  let ids = List.map (fun (e : Tracer.event) -> e.Tracer.id) events in
  check_int "retained ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* span ids are allocated at open, before any child records: every
     parent reference points backwards. A parent that fell off the ring
     is an orphan (allowed); one that survived must be a span. *)
  let by_id = Hashtbl.create cap in
  List.iter (fun (e : Tracer.event) -> Hashtbl.replace by_id e.Tracer.id e) events;
  List.iter
    (fun (e : Tracer.event) ->
      match e.Tracer.parent with
      | None -> ()
      | Some p ->
        check_bool "parent id precedes child id" true (p < e.Tracer.id);
        (match Hashtbl.find_opt by_id p with
        | None -> ()
        | Some pe -> check_bool "resolved parent is a span" true (pe.Tracer.kind = Tracer.Span)))
    events

let test_label_escaping () =
  check_string "backslash, quote and newline escaped"
    "a\\\\b \\\"q\\\" end\\n"
    (Metrics.escape_label_value "a\\b \"q\" end\n");
  check_string "clean value untouched" "plain_value.9"
    (Metrics.escape_label_value "plain_value.9");
  (* a hostile function name must not break the exposition format *)
  let module Audit = Jitbull_obs.Audit in
  let au = Audit.create () in
  ignore
    (Audit.append au ~func_name:"evil\"f\\n{}\nname" ~func_index:0
       ~bytecode_hash:0 ~feedback_hash:0 ~verdict:Audit.Forbid ~matches:[]
       ~thr:2 ~ratio:0.5 ~prefilter_candidates:0 ~prefilter_hits:0
       ~db_generation:0 ~db_size:0 ~source:Audit.Fresh ~duration:0.0 ());
  let text = Audit.render_prometheus au in
  check_bool "escaped func label present" true
    (contains_sub text "func=\"evil\\\"f\\\\n{}\\nname\"");
  (* no sample line may be torn by a raw newline inside a label value *)
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then
        check_bool ("sample line has a value: " ^ line) true
          (String.contains line ' '))
    (String.split_on_char '\n' text)

let test_queue_latency_bounds () =
  let b = Metrics.queue_latency_bounds in
  check_bool "starts at 100ns" true (Float.abs (b.(0) -. 1e-7) < 1e-12);
  check_float "ends at 1s" 1.0 b.(Array.length b - 1);
  let increasing = ref true in
  Array.iteri (fun i x -> if i > 0 then increasing := !increasing && x > b.(i - 1)) b;
  check_bool "strictly increasing" true !increasing;
  let m = Metrics.create () in
  Metrics.observe (Metrics.histogram ~bounds:b m "compile.queued_seconds") 3e-4;
  let hv =
    Option.get (Metrics.find_histogram (Metrics.snapshot m) "compile.queued_seconds")
  in
  check_int "explicit buckets plus overflow" (Array.length b + 1)
    (List.length hv.Metrics.hv_buckets);
  check_bool "+Inf bucket renders" true
    (contains_sub
       (Metrics.render_prometheus (Metrics.snapshot m))
       "compile_queued_seconds_bucket{le=\"+Inf\"} 1")

let test_jsonl_round_trip () =
  let path = Filename.temp_file "jitbull_trace" ".jsonl" in
  let obs = Some (Obs.create ~clock:(fake_clock ()) ()) in
  Obs.set_trace_file (Option.get obs) path;
  Obs.event obs "start" ~fields:[ ("n", Jsonx.Int 1); ("pi", Jsonx.Float 3.25) ];
  Obs.span obs "work"
    ~fields:[ ("what", Jsonx.String "a \"quoted\"\nthing"); ("flag", Jsonx.Bool true) ]
    (fun () -> Obs.event obs "mid" ~fields:[ ("xs", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 2 ]) ]);
  Obs.close obs;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let decoded =
    List.rev_map (fun line -> Tracer.event_of_json (Jsonx.parse line)) !lines
  in
  let original = Tracer.events (Obs.tracer (Option.get obs)) in
  check_int "one line per event" (List.length original) (List.length decoded);
  List.iter2
    (fun (a : Tracer.event) (b : Tracer.event) ->
      check_int "seq" a.Tracer.seq b.Tracer.seq;
      check_string "name" a.Tracer.name b.Tracer.name;
      check_int "depth" a.Tracer.depth b.Tracer.depth;
      check_float "ts" a.Tracer.ts b.Tracer.ts;
      check_float "dur" a.Tracer.dur b.Tracer.dur;
      check_bool "kind" true (a.Tracer.kind = b.Tracer.kind);
      check_bool "fields" true (a.Tracer.fields = b.Tracer.fields))
    original decoded;
  Sys.remove path

let test_json_parser () =
  let v = Jsonx.parse {| {"a": [1, -2.5, "x\n", true, null], "b": {"c": 1e3}} |} in
  check_int "int" 1 (Jsonx.to_int (List.nth (Jsonx.to_list_exn (Jsonx.member "a" v)) 0));
  check_float "float" (-2.5)
    (Jsonx.to_float (List.nth (Jsonx.to_list_exn (Jsonx.member "a" v)) 1));
  check_string "escaped string" "x\n"
    (Jsonx.to_str (List.nth (Jsonx.to_list_exn (Jsonx.member "a" v)) 2));
  check_float "exponent" 1000.0 (Jsonx.to_float (Jsonx.member "c" (Jsonx.member "b" v)));
  (* encoder round-trips through the parser *)
  check_bool "round trip" true (Jsonx.parse (Jsonx.to_string v) = v);
  check_bool "reject garbage" true
    (match Jsonx.parse "{broken" with exception Jsonx.Parse_error _ -> true | _ -> false)

(* ---- zero-cost-when-disabled ---- *)

let test_disabled_obs_is_transparent () =
  (* identical behaviour with no Obs.t installed: default config already
     has obs = None; spans are direct calls *)
  check_int "span None = f ()" 7 (Obs.span None "x" (fun () -> 7));
  Obs.incr None "nothing";
  Obs.event None "nothing";
  let src = "function f(x) { return x + 1; } var t = 0; for (var i = 0; i < 40; i++) t = f(t); print(t);" in
  check_string "engine output unchanged" (interp_output src) (jit_output src)

(* ---- engine integration ---- *)

let test_policy_decide_event_on_variant () =
  let d = V.find Jitbull_passes.Vuln_config.CVE_2019_17026 in
  let vulns = VC.make [ d.V.cve ] in
  let db = Db.create () in
  check_bool "harvest found DNA" true (Db.harvest db ~cve:d.V.name ~vulns d.V.source > 0);
  let obs = Obs.create () in
  let monitor = Jitbull.new_monitor () in
  let config = Jitbull.config ~monitor ~obs ~vulns db in
  let variant = Variants.apply Variants.Rename d.V.source in
  (match V.run_exploit config variant d.V.expected with
  | V.Neutralized -> ()
  | V.Exploited _ -> Alcotest.fail "variant should have been neutralized");
  (* the flagged record in the monitor … *)
  let flagged =
    List.find
      (fun (r : Jitbull.record) -> r.Jitbull.dangerous_passes <> [])
      monitor.Jitbull.records
  in
  (* … must appear as a structured policy_decide trace event with the
     same function name and the same dangerous-pass list *)
  let events = Tracer.events (Obs.tracer obs) in
  let decides =
    List.filter (fun (e : Tracer.event) -> String.equal e.Tracer.name "policy_decide") events
  in
  check_bool "policy_decide events exist" true (decides <> []);
  let event_passes (e : Tracer.event) =
    match List.assoc_opt "passes" e.Tracer.fields with
    | Some (Jsonx.List ps) -> List.map Jsonx.to_str ps
    | _ -> []
  in
  let matching =
    List.find_opt
      (fun (e : Tracer.event) ->
        List.assoc_opt "func" e.Tracer.fields = Some (Jsonx.String flagged.Jitbull.func_name)
        && event_passes e = flagged.Jitbull.dangerous_passes)
      decides
  in
  check_bool "event carries the matching pass list" true (Option.is_some matching);
  let e = Option.get matching in
  check_bool "verdict is not allow" true
    (List.assoc_opt "verdict" e.Tracer.fields <> Some (Jsonx.String "allow"));
  check_bool "decision was timed" true (e.Tracer.dur > 0.0);
  (* the nested spans and per-pass histograms are there too *)
  let names = List.map (fun (e : Tracer.event) -> e.Tracer.name) events in
  check_bool "dna_extract span" true (List.mem "dna_extract" names);
  check_bool "db_compare span" true (List.mem "db_compare" names);
  check_bool "compile_ion span" true (List.mem "compile_ion" names);
  let view = Obs.view (Some obs) in
  check_bool "per-pass histogram recorded" true
    (Option.is_some (Metrics.find_histogram view "pass.gvn.seconds"));
  (* emitted by both comparator paths (naive pairwise and indexed); the
     variant matched, so at least one (entry, pass) pair must have *)
  check_bool "comparator matches counted" true
    (match Metrics.find_counter view "comparator.matches" with Some n -> n > 0 | None -> false);
  check_bool "prefilter hits counted on the indexed default" true
    (match Metrics.find_counter view "comparator.prefilter_hits" with
    | Some n -> n > 0
    | None -> false)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter and gauge semantics" `Quick test_counter_semantics;
      Alcotest.test_case "histogram buckets and quantiles" `Quick test_histogram_semantics;
      Alcotest.test_case "prometheus rendering" `Quick test_prometheus_render;
      Alcotest.test_case "span nesting and durations" `Quick test_span_nesting_and_durations;
      Alcotest.test_case "span duration monotonicity" `Quick test_span_duration_monotonicity;
      Alcotest.test_case "ring-buffer eviction" `Quick test_ring_eviction;
      Alcotest.test_case "span ids and parent resolution" `Quick test_span_ids_and_parents;
      Alcotest.test_case "ring wraparound under concurrent domains" `Quick
        test_ring_wraparound_concurrent;
      Alcotest.test_case "prometheus label-value escaping" `Quick test_label_escaping;
      Alcotest.test_case "queue latency bounds" `Quick test_queue_latency_bounds;
      Alcotest.test_case "JSON-lines round trip" `Quick test_jsonl_round_trip;
      Alcotest.test_case "json parser" `Quick test_json_parser;
      Alcotest.test_case "disabled obs is transparent" `Quick test_disabled_obs_is_transparent;
      Alcotest.test_case "policy_decide event on VDC variant" `Quick
        test_policy_decide_event_on_variant;
    ] )
