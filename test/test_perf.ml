(* The performance layer: string interner, inverted DB index and the
   policy-decision cache.

   The load-bearing property here is decision equivalence — the indexed
   [Db.matching] must agree with the naive comparator fold on every
   database and every parameter setting, including the thr <= 0 corner
   where key-disjoint sides "match" and the index falls back to the
   scan. *)

open Helpers
module Intern = Jitbull_util.Intern
module Db = Jitbull_core.Db
module Dna = Jitbull_core.Dna
module Delta = Jitbull_core.Delta
module Comparator = Jitbull_core.Comparator
module Jitbull = Jitbull_core.Jitbull

(* ---- interner ---- *)

let test_intern_stability () =
  let a = Intern.intern "test_perf:alpha" in
  let b = Intern.intern "test_perf:beta" in
  check_bool "same string, same id" true (Intern.intern "test_perf:alpha" = a);
  check_bool "distinct strings, distinct ids" true (a <> b);
  check_string "to_string round-trips" "test_perf:alpha" (Intern.to_string a);
  let before = Intern.size () in
  ignore (Intern.intern "test_perf:alpha");
  check_int "re-interning allocates nothing" before (Intern.size ())

let test_intern_composites () =
  let a = Intern.intern "tp_op_a" and b = Intern.intern "tp_op_b" in
  let c = Intern.intern "tp_op_c" in
  check_bool "pair id is canonical" true (Intern.pair a b = Intern.intern "tp_op_a->tp_op_b");
  check_string "pair materializes the arrow string" "tp_op_a->tp_op_b"
    (Intern.to_string (Intern.pair a b));
  check_bool "triple id is canonical" true
    (Intern.triple a b c = Intern.intern "tp_op_a->tp_op_b->tp_op_c");
  check_bool "rooted id is canonical" true (Intern.rooted a = Intern.intern "^tp_op_a");
  check_bool "pair is order-sensitive" true (Intern.pair a b <> Intern.pair b a);
  (* composite hit path: second call must not allocate a new id *)
  let before = Intern.size () in
  ignore (Intern.triple a b c);
  check_int "composite re-use allocates nothing" before (Intern.size ())

(* ---- indexed == naive decision equivalence ---- *)

let side_gen =
  let open QCheck.Gen in
  map
    (fun entries ->
      Delta.side_of_list
        (List.map (fun (k, c) -> ("k" ^ string_of_int k, 1 + (c mod 5))) entries))
    (list_size (int_range 0 8) (pair (int_range 0 10) small_nat))

let delta_gen =
  QCheck.Gen.map2 (fun r a -> { Delta.removed = r; added = a }) side_gen side_gen

(* DNAs over a fixed pass pool, each pass present with probability 1/2 —
   mixes matching-pass, missing-pass and empty-delta shapes *)
let dna_gen =
  let open QCheck.Gen in
  map
    (fun choices -> { Dna.func_name = "f"; deltas = List.filter_map Fun.id choices })
    (flatten_l
       (List.map
          (fun p ->
            bool >>= fun keep ->
            if keep then map (fun d -> Some (p, d)) delta_gen else return None)
          [ "gvn"; "licm"; "dce"; "inline" ]))

let db_gen =
  let open QCheck.Gen in
  list_size (int_range 0 6)
    (map2
       (fun i dna -> { Db.cve = "CVE-" ^ string_of_int (i mod 3); dna })
       (int_range 0 9) dna_gen)

(* thr = 0 exercises the naive-fallback path: a non-positive threshold
   matches key-disjoint sides, which no overlap index can see *)
let params_gen =
  QCheck.Gen.oneofl
    (List.concat_map
       (fun thr -> List.map (fun ratio -> { Comparator.thr; ratio }) [ 0.25; 0.5; 0.75 ])
       [ 0; 1; 2; 3 ])

let naive_matching ~params db dna =
  List.filter_map
    (fun (e : Db.entry) ->
      match Comparator.matching_passes ~params dna e.Db.dna with
      | [] -> None
      | passes -> Some (e.Db.cve, passes))
    (Db.entries db)

let build_db entries =
  let db = Db.create () in
  List.iter (Db.add db) entries;
  db

let qcheck_indexed_equals_naive =
  QCheck.Test.make ~count:(qcheck_count 300) ~name:"indexed Db.matching == naive comparator fold"
    QCheck.(make Gen.(triple db_gen dna_gen params_gen))
    (fun (entries, dna, params) ->
      let db = build_db entries in
      Db.matching ~params db dna = naive_matching ~params db dna)

let qcheck_indexed_equals_naive_after_removal =
  QCheck.Test.make ~count:(qcheck_count 150) ~name:"equivalence survives remove_cve's index rebuild"
    QCheck.(make Gen.(triple db_gen dna_gen params_gen))
    (fun (entries, dna, params) ->
      let db = build_db entries in
      Db.remove_cve db "CVE-1";
      Db.matching ~params db dna = naive_matching ~params db dna)

(* ---- Db bookkeeping ---- *)

let test_db_generation_and_order () =
  let entry cve k =
    {
      Db.cve;
      dna =
        {
          Dna.func_name = "f";
          deltas =
            [ ("gvn", { Delta.removed = Delta.side_of_list [ (k, 2) ]; added = Delta.side_of_list [] }) ];
        };
    }
  in
  let db = Db.create () in
  let g0 = Db.generation db in
  Db.add db (entry "CVE-A" "a->b");
  check_bool "add bumps generation" true (Db.generation db > g0);
  Db.add db (entry "CVE-B" "b->c");
  Db.add db (entry "CVE-A" "c->d");
  check_int "size counts every entry" 3 (Db.size db);
  check_bool "entries keep insertion order" true
    (List.map (fun (e : Db.entry) -> e.Db.cve) (Db.entries db) = [ "CVE-A"; "CVE-B"; "CVE-A" ]);
  check_bool "cves dedup to first occurrence" true (Db.cves db = [ "CVE-A"; "CVE-B" ]);
  let g1 = Db.generation db in
  Db.remove_cve db "CVE-A";
  check_bool "remove_cve bumps generation" true (Db.generation db > g1);
  check_bool "survivors keep their order" true
    (List.map (fun (e : Db.entry) -> e.Db.cve) (Db.entries db) = [ "CVE-B" ])

(* ---- policy-decision cache ---- *)

let test_policy_cache_unit () =
  let gen = ref 0 in
  let pc = Engine.Policy_cache.create ~generation:(fun () -> !gen) () in
  check_bool "cold lookup misses" true (Engine.Policy_cache.lookup pc 42 = None);
  Engine.Policy_cache.store pc 42 (Engine.Disable_passes [ "gvn" ]);
  check_bool "stored verdict comes back" true
    (Engine.Policy_cache.lookup pc 42 = Some (Engine.Disable_passes [ "gvn" ]));
  check_int "one hit" 1 (Engine.Policy_cache.hits pc);
  check_int "one miss" 1 (Engine.Policy_cache.misses pc);
  incr gen;
  check_bool "generation change drops the verdict" true
    (Engine.Policy_cache.lookup pc 42 = None);
  check_int "flush is counted" 1 (Engine.Policy_cache.invalidations pc);
  check_int "table is empty after the flush" 0 (Engine.Policy_cache.length pc)

let hot_src =
  "function hot(a) { var t = 0; for (var i = 0; i < 10; i++) { t = t + a * i; } return t; } \
   var s = 0; for (var k = 0; k < 12; k++) { s = s + hot(k); } print(s);"

let synthetic_entry name =
  {
    Db.cve = name;
    dna =
      {
        Dna.func_name = "vdc";
        deltas =
          [
            ( "gvn",
              {
                Delta.removed = Delta.side_of_list [ ("perf_synth_x->perf_synth_y", 3) ];
                added = Delta.side_of_list [];
              } );
          ];
      };
  }

let test_engine_cache_integration () =
  (* one config shared by successive engines: the second run's Ion compile
     of the same function must hit the cache, and a DB mutation must
     invalidate it *)
  let db = Db.create () in
  Db.add db (synthetic_entry "CVE-SYN-1");
  let cfg = Jitbull.config ~vulns:VC.none db in
  let cfg = { cfg with Engine.baseline_threshold = 2; ion_threshold = 4 } in
  let pc = Option.get cfg.Engine.policy_cache in
  let out1 = fst (Engine.run_source cfg hot_src) in
  let misses1 = Engine.Policy_cache.misses pc in
  check_bool "first run only misses" true
    (misses1 > 0 && Engine.Policy_cache.hits pc = 0);
  let out2 = fst (Engine.run_source cfg hot_src) in
  check_string "cached verdicts preserve output" out1 out2;
  check_bool "second run hits" true (Engine.Policy_cache.hits pc > 0);
  check_int "second run adds no misses" misses1 (Engine.Policy_cache.misses pc);
  Db.add db (synthetic_entry "CVE-SYN-2");
  let out3 = fst (Engine.run_source cfg hot_src) in
  check_string "post-invalidation output unchanged" out1 out3;
  check_bool "DB mutation invalidates the cache" true
    (Engine.Policy_cache.invalidations pc > 0);
  check_bool "third run re-analyzes" true (Engine.Policy_cache.misses pc > misses1)

(* ---- off-main-thread compilation ---- *)

module CQ = Jitbull_jit.Compile_queue
module Op = Jitbull_bytecode.Op
module Value = Jitbull_runtime.Value
module Clock = Jitbull_obs.Clock

(* Helper-domain count for the async tests; CI runs the suite at 2 and
   again at a second value via this variable. 0 is clamped to 1: these
   tests exist to exercise the pool, and jobs=0 semantics (no pool at
   all) are what every other test in the suite runs under. *)
let test_jobs =
  match Sys.getenv_opt "JITBULL_TEST_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 2)
  | None -> 2

let with_pool ?capacity f =
  let pool = CQ.create ?capacity ~jobs:test_jobs () in
  Fun.protect ~finally:(fun () -> CQ.shutdown pool) (fun () -> f pool)

let test_queue_basic () =
  with_pool (fun pool ->
      check_bool "spawned some workers" true (CQ.jobs pool >= 1);
      let hits = Atomic.make 0 in
      let jobs =
        List.init 20 (fun _ -> CQ.submit pool (fun () -> Atomic.incr hits))
      in
      CQ.wait_idle pool;
      check_int "every job ran" 20 (Atomic.get hits);
      check_bool "all jobs done" true
        (List.for_all (fun j -> CQ.job_state j = CQ.Done) jobs);
      let submitted, completed, cancelled = CQ.stats pool in
      check_int "submitted" 20 submitted;
      check_int "completed" 20 completed;
      check_int "cancelled" 0 cancelled;
      check_int "nothing pending" 0 (CQ.pending pool);
      check_int "nothing in flight" 0 (CQ.in_flight pool));
  (* a raising job must not kill its worker domain *)
  with_pool (fun pool ->
      ignore (CQ.submit pool (fun () -> failwith "worker must survive this"));
      CQ.wait_idle pool;
      let ran = Atomic.make false in
      ignore (CQ.submit pool (fun () -> Atomic.set ran true));
      CQ.wait_idle pool;
      check_bool "worker survives a raising job" true (Atomic.get ran))

(* Block every worker on a latch, so queued jobs stay queued and the
   bounded queue's backpressure and cancellation are observable. *)
let test_queue_backpressure_and_cancel () =
  let pool = CQ.create ~capacity:2 ~jobs:test_jobs () in
  Fun.protect
    ~finally:(fun () -> CQ.shutdown pool)
    (fun () ->
      let n = CQ.jobs pool in
      let gate = Atomic.make false in
      let blocker () = while not (Atomic.get gate) do Domain.cpu_relax () done in
      for _ = 1 to n do ignore (CQ.submit pool blocker) done;
      while CQ.in_flight pool < n do Domain.cpu_relax () done;
      (* workers busy: the next [capacity] jobs queue up, then the queue
         refuses *)
      let ran = Atomic.make 0 in
      let q1 = CQ.submit pool (fun () -> Atomic.incr ran) in
      let q2 = CQ.submit pool (fun () -> Atomic.incr ran) in
      check_int "both queued" 2 (CQ.pending pool);
      check_bool "queue full refuses" true
        (CQ.try_submit pool (fun () -> Atomic.incr ran) = None);
      check_bool "pending job cancels" true (CQ.cancel pool q1);
      check_bool "cancelled state sticks" true (CQ.job_state q1 = CQ.Cancelled);
      check_bool "second cancel is a no-op" false (CQ.cancel pool q1);
      check_int "cancelled job leaves the runnable count" 1 (CQ.pending pool);
      Atomic.set gate true;
      CQ.wait_idle pool;
      check_int "cancelled closure never ran" 1 (Atomic.get ran);
      check_bool "survivor completed" true (CQ.job_state q2 = CQ.Done);
      let _, _, cancelled = CQ.stats pool in
      check_int "cancellation counted" 1 cancelled)

let test_queue_shutdown_drains () =
  let pool = CQ.create ~jobs:test_jobs () in
  let hits = Atomic.make 0 in
  for _ = 1 to 30 do ignore (CQ.submit pool (fun () -> Atomic.incr hits)) done;
  CQ.shutdown pool;
  check_int "shutdown drains queued jobs" 30 (Atomic.get hits);
  check_bool "submit after shutdown refuses" true
    (CQ.try_submit pool (fun () -> ()) = None);
  CQ.shutdown pool (* idempotent *)

(* -- async engine == sync engine -- *)

let func_idx eng name =
  let funcs = (Engine.vm eng).Vm.program.Op.funcs in
  let rec go i =
    if i >= Array.length funcs then Alcotest.fail ("no function " ^ name)
    else if String.equal funcs.(i).Op.name name then i
    else go (i + 1)
  in
  go 0

let num n = Value.Number (float_of_int n)
let call eng idx args = Value.to_display (Vm.call_function (Engine.vm eng) idx args)

let fresh_config ?compile_pool ~max_bailouts tag =
  let db = Db.create () in
  Db.add db (synthetic_entry ("CVE-ASYNC-" ^ tag));
  let cfg = Jitbull.config ?compile_pool ~vulns:VC.none db in
  (db, { cfg with Engine.baseline_threshold = 2; ion_threshold = 4; max_bailouts })

let async_src =
  "function add(a, b) { return a + b; } \
   function tri(x) { var t = 0; for (var i = 0; i < x; i++) { t = t + i; } return t; } \
   function at(i) { var a = [7, 8, 9]; return a[i]; }"

let make_engine config = Engine.create config (Compiler.compile (Parser.parse async_src))

(* Drive the same call sequence through a synchronous and a background
   engine, draining the pool after every call so installation points are
   deterministic; every return value, every final tier and the policy
   accounting must agree. (The only scheduling freedom left is that the
   threshold-crossing call itself runs baseline in async mode while sync
   mode already runs the fresh Ion code — invisible here because these
   calls don't bail out.) *)
let test_async_equals_sync () =
  with_pool (fun pool ->
      let _, sync_cfg = fresh_config ~max_bailouts:8 "S" in
      let _, async_cfg = fresh_config ~compile_pool:pool ~max_bailouts:8 "A" in
      let se = make_engine sync_cfg and ae = make_engine async_cfg in
      let drive eng =
        let add = func_idx eng "add" and tri = func_idx eng "tri" in
        List.concat_map
          (fun i ->
            let r1 = call eng add [ num i; num (i + 1) ] in
            let r2 = call eng tri [ num (i mod 5) ] in
            Engine.drain eng;
            [ r1; r2 ])
          (List.init 10 Fun.id)
      in
      let sync_out = drive se and async_out = drive ae in
      check_bool "every call agrees" true (List.equal String.equal sync_out async_out);
      List.iter
        (fun name ->
          check_bool ("final tier agrees for " ^ name) true
            (Engine.tier_of se (func_idx se name) = Engine.tier_of ae (func_idx ae name)))
        [ "add"; "tri"; "at" ];
      let ss = Engine.stats se and sa = Engine.stats ae in
      check_int "Nr_JIT agrees" ss.Engine.nr_jit sa.Engine.nr_jit;
      check_int "Nr_DisJIT agrees" ss.Engine.nr_disjit sa.Engine.nr_disjit;
      check_int "Nr_NoJIT agrees" ss.Engine.nr_nojit sa.Engine.nr_nojit;
      check_int "ion compiles agree" ss.Engine.ion_compiles sa.Engine.ion_compiles;
      check_bool "installs went through the safepoint" true
        (sa.Engine.async_installs >= 2);
      check_int "nothing was stale" 0 sa.Engine.stale_results)

(* A mid-compile [Db.add] moves the DB generation: the finished result
   must be discarded (stale), the verdict computed against the old DB
   must not be cached under the new generation, and the next invocation
   re-enqueues and installs cleanly. *)
let test_async_stale_result () =
  with_pool (fun pool ->
      let db, cfg = fresh_config ~compile_pool:pool ~max_bailouts:8 "STALE" in
      let pc = Option.get cfg.Engine.policy_cache in
      let eng = make_engine cfg in
      let tri = func_idx eng "tri" in
      for i = 1 to 4 do ignore (call eng tri [ num i ]) done;
      (* the 4th call crossed ion_threshold: a compile is now in flight
         against the current generation — invalidate it *)
      Db.add db (synthetic_entry "CVE-ASYNC-STALE-2");
      Engine.drain eng;
      let s = Engine.stats eng in
      check_int "result discarded as stale" 1 s.Engine.stale_results;
      check_int "nothing installed" 0 s.Engine.async_installs;
      check_bool "function still baseline" true (Engine.tier_of eng tri = Engine.Baseline);
      check_string "semantics preserved across the discard" "10"
        (call eng tri [ num 5 ]);
      Engine.drain eng;
      check_bool "re-enqueued compile installs" true (Engine.tier_of eng tri = Engine.Ion);
      let s = Engine.stats eng in
      check_int "one install after the retry" 1 s.Engine.async_installs;
      check_bool "both compiles re-analyzed (no cache hit)" true
        (Engine.Policy_cache.hits pc = 0 && Engine.Policy_cache.misses pc >= 2))

(* Forced bailouts while compiles are in flight: out-of-bounds reads bail
   Ion code back to the interpreter until the function is blacklisted;
   values and the final tier must match the synchronous engine. *)
let test_async_bailout_blacklist () =
  with_pool (fun pool ->
      let _, sync_cfg = fresh_config ~max_bailouts:3 "BS" in
      let _, async_cfg = fresh_config ~compile_pool:pool ~max_bailouts:3 "BA" in
      let se = make_engine sync_cfg and ae = make_engine async_cfg in
      let drive eng =
        let at = func_idx eng "at" in
        List.init 16 (fun i ->
            let r = call eng at [ num (if i mod 2 = 0 then 1 else 5) ] in
            Engine.drain eng;
            r)
      in
      let sync_out = drive se and async_out = drive ae in
      check_bool "bailing calls agree" true (List.equal String.equal sync_out async_out);
      check_bool "sync run blacklists" true
        (Engine.tier_of se (func_idx se "at") = Engine.Blacklisted);
      check_bool "async run blacklists too" true
        (Engine.tier_of ae (func_idx ae "at") = Engine.Blacklisted);
      check_bool "async saw bailouts" true ((Engine.stats ae).Engine.bailouts > 0))

(* -- QCheck stress: random interleavings of hot calls, forced bailouts
   and DB mutations -- *)

type stress_op = Call of int * int | Db_add | Drain

let stress_op_gen =
  QCheck.Gen.(
    frequency
      [
        (10, map2 (fun f n -> Call (f, n)) (int_range 0 2) (int_range 0 6));
        (1, return Db_add);
        (2, return Drain);
      ])

let stress_gen = QCheck.Gen.list_size (QCheck.Gen.int_range 8 60) stress_op_gen

let show_stress ops =
  String.concat ";"
    (List.map
       (function
         | Call (f, n) -> Printf.sprintf "call(%d,%d)" f n
         | Db_add -> "db_add"
         | Drain -> "drain")
       ops)

let qcheck_async_stress =
  QCheck.Test.make ~count:(qcheck_count 20) ~name:"async final state equals the synchronous run"
    (QCheck.make ~print:show_stress stress_gen)
    (fun ops ->
      with_pool (fun pool ->
          let sync_dbt, sync_cfg = fresh_config ~max_bailouts:3 "QS" in
          let async_dbt, async_cfg = fresh_config ~compile_pool:pool ~max_bailouts:3 "QA" in
          let se = make_engine sync_cfg and ae = make_engine async_cfg in
          let sync_db = ref 0 and async_db = ref 0 in
          let apply eng db_src db_count op =
            match op with
            | Call (f, n) ->
              let idx = func_idx eng [| "add"; "tri"; "at" |].(f) in
              let args = if f = 0 then [ num n; num n ] else [ num n ] in
              let r = call eng idx args in
              (* drain after every call: installation points line up with
                 the synchronous engine's, leaving only the one-call lag *)
              Engine.drain eng;
              Some r
            | Db_add ->
              incr db_count;
              Db.add db_src (synthetic_entry (Printf.sprintf "CVE-STRESS-%d" !db_count));
              None
            | Drain ->
              Engine.drain eng;
              None
          in
          let sync_out = List.filter_map (apply se sync_dbt sync_db) ops in
          let async_out = List.filter_map (apply ae async_dbt async_db) ops in
          if not (List.equal String.equal sync_out async_out) then false
          else begin
            (* settle: identical extra calls until the tier lattice
               converges — the threshold-crossing call itself runs one
               tier behind in async mode, so bailout counts can trail by
               one; repeated bailing calls push both runs over
               max_bailouts *)
            let converged () =
              List.for_all
                (fun name ->
                  Engine.tier_of se (func_idx se name)
                  = Engine.tier_of ae (func_idx ae name))
                [ "add"; "tri"; "at" ]
            in
            let rounds = ref 0 in
            while (not (converged ())) && !rounds < 12 do
              incr rounds;
              List.iter
                (fun eng ->
                  ignore (call eng (func_idx eng "add") [ num 1; num 2 ]);
                  ignore (call eng (func_idx eng "tri") [ num 3 ]);
                  ignore (call eng (func_idx eng "at") [ num 5 ]);
                  Engine.drain eng)
                [ se; ae ]
            done;
            converged ()
          end))

(* -- deterministic durations via the injectable clock -- *)

let test_clock_manual_determinism () =
  let src, advance = Clock.manual ~start:100.0 () in
  Clock.with_source src (fun () ->
      let t0 = Clock.now () in
      advance 2.5;
      check_bool "manual clock advances exactly" true (Clock.now () -. t0 = 2.5));
  check_bool "with_source restores the previous source" true
    (Clock.source () != src);
  (* a frozen clock makes every engine duration exactly zero — proof that
     stall accounting reads Clock.now, not the wall clock *)
  let frozen, _ = Clock.manual () in
  Clock.with_source frozen (fun () ->
      let _, eng = Engine.run_source jit_config hot_src in
      check_bool "frozen clock, zero stall" true
        ((Engine.stats eng).Engine.main_stall_seconds = 0.0))

let test_no_policy_cache_config () =
  let db = Db.create () in
  Db.add db (synthetic_entry "CVE-SYN-3");
  let cfg = Jitbull.config ~policy_cache:false ~vulns:VC.none db in
  check_bool "policy_cache:false installs no cache" true (cfg.Engine.policy_cache = None);
  let empty = Jitbull.config ~vulns:VC.none (Db.create ()) in
  check_bool "empty DB installs no cache either" true (empty.Engine.policy_cache = None)

let suite =
  ( "perf",
    [
      Alcotest.test_case "interner id stability" `Quick test_intern_stability;
      Alcotest.test_case "interner composite ids" `Quick test_intern_composites;
      qtest qcheck_indexed_equals_naive;
      qtest qcheck_indexed_equals_naive_after_removal;
      Alcotest.test_case "db generation and entry order" `Quick test_db_generation_and_order;
      Alcotest.test_case "policy cache lookup/store/invalidate" `Quick test_policy_cache_unit;
      Alcotest.test_case "policy cache across engine runs" `Quick test_engine_cache_integration;
      Alcotest.test_case "policy cache opt-out" `Quick test_no_policy_cache_config;
      Alcotest.test_case "compile queue basics" `Quick test_queue_basic;
      Alcotest.test_case "compile queue backpressure + cancel" `Quick
        test_queue_backpressure_and_cancel;
      Alcotest.test_case "compile queue shutdown drains" `Quick test_queue_shutdown_drains;
      Alcotest.test_case "async engine == sync engine" `Quick test_async_equals_sync;
      Alcotest.test_case "mid-compile Db.add discards the result" `Quick
        test_async_stale_result;
      Alcotest.test_case "async bailouts blacklist like sync" `Quick
        test_async_bailout_blacklist;
      qtest qcheck_async_stress;
      Alcotest.test_case "manual clock determinism" `Quick test_clock_manual_determinism;
    ] )
