(* The performance layer: string interner, inverted DB index and the
   policy-decision cache.

   The load-bearing property here is decision equivalence — the indexed
   [Db.matching] must agree with the naive comparator fold on every
   database and every parameter setting, including the thr <= 0 corner
   where key-disjoint sides "match" and the index falls back to the
   scan. *)

open Helpers
module Intern = Jitbull_util.Intern
module Db = Jitbull_core.Db
module Dna = Jitbull_core.Dna
module Delta = Jitbull_core.Delta
module Comparator = Jitbull_core.Comparator
module Jitbull = Jitbull_core.Jitbull

(* ---- interner ---- *)

let test_intern_stability () =
  let a = Intern.intern "test_perf:alpha" in
  let b = Intern.intern "test_perf:beta" in
  check_bool "same string, same id" true (Intern.intern "test_perf:alpha" = a);
  check_bool "distinct strings, distinct ids" true (a <> b);
  check_string "to_string round-trips" "test_perf:alpha" (Intern.to_string a);
  let before = Intern.size () in
  ignore (Intern.intern "test_perf:alpha");
  check_int "re-interning allocates nothing" before (Intern.size ())

let test_intern_composites () =
  let a = Intern.intern "tp_op_a" and b = Intern.intern "tp_op_b" in
  let c = Intern.intern "tp_op_c" in
  check_bool "pair id is canonical" true (Intern.pair a b = Intern.intern "tp_op_a->tp_op_b");
  check_string "pair materializes the arrow string" "tp_op_a->tp_op_b"
    (Intern.to_string (Intern.pair a b));
  check_bool "triple id is canonical" true
    (Intern.triple a b c = Intern.intern "tp_op_a->tp_op_b->tp_op_c");
  check_bool "rooted id is canonical" true (Intern.rooted a = Intern.intern "^tp_op_a");
  check_bool "pair is order-sensitive" true (Intern.pair a b <> Intern.pair b a);
  (* composite hit path: second call must not allocate a new id *)
  let before = Intern.size () in
  ignore (Intern.triple a b c);
  check_int "composite re-use allocates nothing" before (Intern.size ())

(* ---- indexed == naive decision equivalence ---- *)

let side_gen =
  let open QCheck.Gen in
  map
    (fun entries ->
      Delta.side_of_list
        (List.map (fun (k, c) -> ("k" ^ string_of_int k, 1 + (c mod 5))) entries))
    (list_size (int_range 0 8) (pair (int_range 0 10) small_nat))

let delta_gen =
  QCheck.Gen.map2 (fun r a -> { Delta.removed = r; added = a }) side_gen side_gen

(* DNAs over a fixed pass pool, each pass present with probability 1/2 —
   mixes matching-pass, missing-pass and empty-delta shapes *)
let dna_gen =
  let open QCheck.Gen in
  map
    (fun choices -> { Dna.func_name = "f"; deltas = List.filter_map Fun.id choices })
    (flatten_l
       (List.map
          (fun p ->
            bool >>= fun keep ->
            if keep then map (fun d -> Some (p, d)) delta_gen else return None)
          [ "gvn"; "licm"; "dce"; "inline" ]))

let db_gen =
  let open QCheck.Gen in
  list_size (int_range 0 6)
    (map2
       (fun i dna -> { Db.cve = "CVE-" ^ string_of_int (i mod 3); dna })
       (int_range 0 9) dna_gen)

(* thr = 0 exercises the naive-fallback path: a non-positive threshold
   matches key-disjoint sides, which no overlap index can see *)
let params_gen =
  QCheck.Gen.oneofl
    (List.concat_map
       (fun thr -> List.map (fun ratio -> { Comparator.thr; ratio }) [ 0.25; 0.5; 0.75 ])
       [ 0; 1; 2; 3 ])

let naive_matching ~params db dna =
  List.filter_map
    (fun (e : Db.entry) ->
      match Comparator.matching_passes ~params dna e.Db.dna with
      | [] -> None
      | passes -> Some (e.Db.cve, passes))
    (Db.entries db)

let build_db entries =
  let db = Db.create () in
  List.iter (Db.add db) entries;
  db

let qcheck_indexed_equals_naive =
  QCheck.Test.make ~count:300 ~name:"indexed Db.matching == naive comparator fold"
    QCheck.(make Gen.(triple db_gen dna_gen params_gen))
    (fun (entries, dna, params) ->
      let db = build_db entries in
      Db.matching ~params db dna = naive_matching ~params db dna)

let qcheck_indexed_equals_naive_after_removal =
  QCheck.Test.make ~count:150 ~name:"equivalence survives remove_cve's index rebuild"
    QCheck.(make Gen.(triple db_gen dna_gen params_gen))
    (fun (entries, dna, params) ->
      let db = build_db entries in
      Db.remove_cve db "CVE-1";
      Db.matching ~params db dna = naive_matching ~params db dna)

(* ---- Db bookkeeping ---- *)

let test_db_generation_and_order () =
  let entry cve k =
    {
      Db.cve;
      dna =
        {
          Dna.func_name = "f";
          deltas =
            [ ("gvn", { Delta.removed = Delta.side_of_list [ (k, 2) ]; added = Delta.side_of_list [] }) ];
        };
    }
  in
  let db = Db.create () in
  let g0 = Db.generation db in
  Db.add db (entry "CVE-A" "a->b");
  check_bool "add bumps generation" true (Db.generation db > g0);
  Db.add db (entry "CVE-B" "b->c");
  Db.add db (entry "CVE-A" "c->d");
  check_int "size counts every entry" 3 (Db.size db);
  check_bool "entries keep insertion order" true
    (List.map (fun (e : Db.entry) -> e.Db.cve) (Db.entries db) = [ "CVE-A"; "CVE-B"; "CVE-A" ]);
  check_bool "cves dedup to first occurrence" true (Db.cves db = [ "CVE-A"; "CVE-B" ]);
  let g1 = Db.generation db in
  Db.remove_cve db "CVE-A";
  check_bool "remove_cve bumps generation" true (Db.generation db > g1);
  check_bool "survivors keep their order" true
    (List.map (fun (e : Db.entry) -> e.Db.cve) (Db.entries db) = [ "CVE-B" ])

(* ---- policy-decision cache ---- *)

let test_policy_cache_unit () =
  let gen = ref 0 in
  let pc = Engine.Policy_cache.create ~generation:(fun () -> !gen) () in
  check_bool "cold lookup misses" true (Engine.Policy_cache.lookup pc 42 = None);
  Engine.Policy_cache.store pc 42 (Engine.Disable_passes [ "gvn" ]);
  check_bool "stored verdict comes back" true
    (Engine.Policy_cache.lookup pc 42 = Some (Engine.Disable_passes [ "gvn" ]));
  check_int "one hit" 1 (Engine.Policy_cache.hits pc);
  check_int "one miss" 1 (Engine.Policy_cache.misses pc);
  incr gen;
  check_bool "generation change drops the verdict" true
    (Engine.Policy_cache.lookup pc 42 = None);
  check_int "flush is counted" 1 (Engine.Policy_cache.invalidations pc);
  check_int "table is empty after the flush" 0 (Engine.Policy_cache.length pc)

let hot_src =
  "function hot(a) { var t = 0; for (var i = 0; i < 10; i++) { t = t + a * i; } return t; } \
   var s = 0; for (var k = 0; k < 12; k++) { s = s + hot(k); } print(s);"

let synthetic_entry name =
  {
    Db.cve = name;
    dna =
      {
        Dna.func_name = "vdc";
        deltas =
          [
            ( "gvn",
              {
                Delta.removed = Delta.side_of_list [ ("perf_synth_x->perf_synth_y", 3) ];
                added = Delta.side_of_list [];
              } );
          ];
      };
  }

let test_engine_cache_integration () =
  (* one config shared by successive engines: the second run's Ion compile
     of the same function must hit the cache, and a DB mutation must
     invalidate it *)
  let db = Db.create () in
  Db.add db (synthetic_entry "CVE-SYN-1");
  let cfg = Jitbull.config ~vulns:VC.none db in
  let cfg = { cfg with Engine.baseline_threshold = 2; ion_threshold = 4 } in
  let pc = Option.get cfg.Engine.policy_cache in
  let out1 = fst (Engine.run_source cfg hot_src) in
  let misses1 = Engine.Policy_cache.misses pc in
  check_bool "first run only misses" true
    (misses1 > 0 && Engine.Policy_cache.hits pc = 0);
  let out2 = fst (Engine.run_source cfg hot_src) in
  check_string "cached verdicts preserve output" out1 out2;
  check_bool "second run hits" true (Engine.Policy_cache.hits pc > 0);
  check_int "second run adds no misses" misses1 (Engine.Policy_cache.misses pc);
  Db.add db (synthetic_entry "CVE-SYN-2");
  let out3 = fst (Engine.run_source cfg hot_src) in
  check_string "post-invalidation output unchanged" out1 out3;
  check_bool "DB mutation invalidates the cache" true
    (Engine.Policy_cache.invalidations pc > 0);
  check_bool "third run re-analyzes" true (Engine.Policy_cache.misses pc > misses1)

let test_no_policy_cache_config () =
  let db = Db.create () in
  Db.add db (synthetic_entry "CVE-SYN-3");
  let cfg = Jitbull.config ~policy_cache:false ~vulns:VC.none db in
  check_bool "policy_cache:false installs no cache" true (cfg.Engine.policy_cache = None);
  let empty = Jitbull.config ~vulns:VC.none (Db.create ()) in
  check_bool "empty DB installs no cache either" true (empty.Engine.policy_cache = None)

let suite =
  ( "perf",
    [
      Alcotest.test_case "interner id stability" `Quick test_intern_stability;
      Alcotest.test_case "interner composite ids" `Quick test_intern_composites;
      qtest qcheck_indexed_equals_naive;
      qtest qcheck_indexed_equals_naive_after_removal;
      Alcotest.test_case "db generation and entry order" `Quick test_db_generation_and_order;
      Alcotest.test_case "policy cache lookup/store/invalidate" `Quick test_policy_cache_unit;
      Alcotest.test_case "policy cache across engine runs" `Quick test_engine_cache_integration;
      Alcotest.test_case "policy cache opt-out" `Quick test_no_policy_cache_config;
    ] )
