(* Additional property-based tests over core invariants. *)

open Helpers
module Heap = Jitbull_runtime.Heap
module Value = Jitbull_runtime.Value
module Errors = Jitbull_runtime.Errors
module Comparator = Jitbull_core.Comparator
module Delta = Jitbull_core.Delta
module Variants = Jitbull_vdc.Variants

(* ---- heap invariant: live array regions never overlap ----

   Random sequences of alloc / set / push / pop / set_length must keep
   every array's [base, base + 2 + capacity) region disjoint from every
   other's — otherwise checked writes could corrupt neighbours, which is
   supposed to require an (unchecked) exploit primitive. *)

type heap_op =
  | Alloc of int
  | Push of int
  | Pop of int
  | Set_len of int * int
  | Store of int * int

let heap_op_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun n -> Alloc (n mod 12)) small_nat;
      map (fun h -> Push h) small_nat;
      map (fun h -> Pop h) small_nat;
      map2 (fun h n -> Set_len (h, n mod 40)) small_nat small_nat;
      map2 (fun h i -> Store (h, i mod 16)) small_nat small_nat;
    ]

let regions_disjoint heap handles =
  let regions =
    List.map
      (fun h ->
        let base = Heap.base_addr heap h in
        (base, base + 2 + Heap.capacity heap h))
      handles
  in
  let rec check = function
    | [] -> true
    | (lo, hi) :: rest ->
      List.for_all (fun (lo', hi') -> hi <= lo' || hi' <= lo) rest && check rest
  in
  check regions

let qcheck_heap_disjoint =
  QCheck.Test.make ~count:(qcheck_count 200) ~name:"live array regions stay disjoint"
    QCheck.(make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 60) heap_op_gen))
    (fun ops ->
      let heap = Heap.create ~size_limit:8192 () in
      let handles = ref [] in
      let nth h =
        match !handles with
        | [] -> None
        | hs -> Some (List.nth hs (h mod List.length hs))
      in
      (try
         List.iter
           (fun op ->
             match op with
             | Alloc n -> handles := Heap.alloc_array heap ~length:n :: !handles
             | Push h -> (
               match nth h with
               | Some h -> Heap.push heap h (Value.Number 1.0)
               | None -> ())
             | Pop h -> ( match nth h with Some h -> ignore (Heap.pop heap h) | None -> ())
             | Set_len (h, n) -> (
               match nth h with Some h -> Heap.set_length heap h n | None -> ())
             | Store (h, i) -> (
               match nth h with Some h -> Heap.set heap h i (Value.Number 2.0) | None -> ()))
           ops
       with Errors.Heap_exhausted -> ());
      regions_disjoint heap !handles)

let qcheck_heap_checked_never_corrupts =
  (* checked stores through one array never change another's length *)
  QCheck.Test.make ~count:(qcheck_count 200) ~name:"checked stores cannot corrupt neighbours"
    QCheck.(pair (int_range 0 40) (int_range (-5) 60))
    (fun (len, idx) ->
      let heap = Heap.create ~size_limit:4096 () in
      let a = Heap.alloc_array heap ~length:len in
      let b = Heap.alloc_array heap ~length:3 in
      Heap.set heap a idx (Value.Number 424242.0);
      Heap.length heap b = 3 && Heap.capacity heap b = 3)

(* ---- comparator symmetry ---- *)

let side_gen =
  let open QCheck.Gen in
  map
    (fun entries ->
      Delta.side_of_list
        (List.map (fun (k, c) -> ("k" ^ string_of_int k, 1 + (c mod 5))) entries))
    (list_size (int_range 0 8) (pair (int_range 0 10) small_nat))

let qcheck_comparator_symmetric =
  QCheck.Test.make ~count:(qcheck_count 300) ~name:"compare_sides is symmetric"
    QCheck.(make QCheck.Gen.(pair side_gen side_gen))
    (fun (a, b) -> Comparator.compare_sides a b = Comparator.compare_sides b a)

let qcheck_comparator_reflexive_when_big_enough =
  QCheck.Test.make ~count:(qcheck_count 300) ~name:"compare_sides reflexive above Thr"
    QCheck.(make side_gen)
    (fun a ->
      let total = Delta.total a in
      let expected = total >= Comparator.default_params.Comparator.thr in
      Comparator.compare_sides a a = expected)

(* ---- variants preserve semantics on generated programs ---- *)

let qcheck_variants_preserve_semantics =
  QCheck.Test.make ~count:(qcheck_count 20) ~name:"variants preserve semantics on generated programs"
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, kind_idx) ->
      let src = Test_differential.gen_program seed in
      let kind = List.nth Variants.all_kinds kind_idx in
      let variant = Variants.apply kind src in
      String.equal (interp_output src) (interp_output variant))

(* ---- jit output stable across engine thresholds ---- *)

let qcheck_threshold_independence =
  QCheck.Test.make ~count:(qcheck_count 20) ~name:"output independent of tier-up thresholds"
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, threshold) ->
      let src = Test_differential.gen_program seed in
      let config =
        { Helpers.Engine.default_config with
          Helpers.Engine.baseline_threshold = max 1 (threshold / 2);
          ion_threshold = threshold }
      in
      String.equal (interp_output src) (jit_output ~config src))

let suite =
  ( "properties",
    [
      qtest qcheck_heap_disjoint;
      qtest qcheck_heap_checked_never_corrupts;
      qtest qcheck_comparator_symmetric;
      qtest qcheck_comparator_reflexive_when_big_enough;
      qtest qcheck_variants_preserve_semantics;
      qtest qcheck_threshold_independence;
    ] )
