(* Tests for the jitbulld verdict service: wire protocol, keep-alive
   HTTP layer, sharded-vs-indexed query equality, the three-level server
   cache with generation invalidation, push-driven cache flushes on the
   client, and the remote==local analyzer oracle. *)

open Helpers
module Http = Jitbull_obs.Http_export
module Jsonx = Jitbull_obs.Jsonx
module Sexpr = Jitbull_util.Sexpr
module Db = Jitbull_core.Db
module Dna = Jitbull_core.Dna
module Comparator = Jitbull_core.Comparator
module Jitbull = Jitbull_core.Jitbull
module V = Jitbull_vdc.Demonstrators
module Proto = Jitbull_service.Proto
module Service = Jitbull_service.Service
module Client = Jitbull_service.Client
module Oracle = Jitbull_fuzz.Oracle

let params = Comparator.default_params

(* One harvested DB shared by the suite (harvesting runs demonstrators,
   so do it once). Tests that mutate build their own copy. *)
let harvest_cves = [ List.nth VC.all 0; List.nth VC.all 1 ]

let build_db () =
  let db = Db.create () in
  List.iter
    (fun cve ->
      let d = V.find cve in
      ignore (Db.harvest db ~cve:d.V.name ~vulns:(VC.make [ cve ]) d.V.source))
    harvest_cves;
  db

let shared_db = lazy (build_db ())

let dna_text dna = Sexpr.to_string (Dna.to_sexpr dna)

let req_of_entry ?(id = 0) (e : Db.entry) =
  {
    Proto.vr_id = id;
    vr_func = e.Db.dna.Dna.func_name;
    vr_bytecode_hash = 0x1234 + id;
    vr_feedback_hash = 0x5678 + id;
    vr_dna = dna_text e.Db.dna;
  }

(* the verdict the in-process path computes for the same DNA *)
let local_verdict db dna =
  let _, verdict = Jitbull.verdict_of_matches (Db.matching ~params db dna) in
  verdict

(* ---- wire protocol ---- *)

let test_proto_roundtrip () =
  let reqs =
    [
      { Proto.vr_id = 0; vr_func = "f"; vr_bytecode_hash = 1;
        vr_feedback_hash = 2; vr_dna = "(dna (func f) (deltas))" };
      { Proto.vr_id = max_int; vr_func = "weird \"name\"\n";
        vr_bytecode_hash = -5; vr_feedback_hash = 0;
        vr_dna = "line1\nline2\ttab" };
    ]
  in
  let round = Proto.decode_reqs (Proto.encode_reqs reqs) in
  check_bool "req batch round-trips" true (round = reqs);
  let resps =
    [
      { Proto.vs_id = 1; vs_verdict = `Allow; vs_passes = [];
        vs_matched = []; vs_generation = 3; vs_cached = false };
      { Proto.vs_id = 2; vs_verdict = `Disable [ "gvn"; "licm" ];
        vs_passes = [ "gvn"; "licm" ];
        vs_matched = [ ("CVE-1", [ "gvn" ]) ]; vs_generation = 3;
        vs_cached = true };
      { Proto.vs_id = 3; vs_verdict = `Forbid; vs_passes = [];
        vs_matched = []; vs_generation = 0; vs_cached = false };
    ]
  in
  let round = Proto.decode_resps (Proto.encode_resps resps) in
  check_bool "resp batch round-trips" true (round = resps)

let test_proto_keys () =
  let r =
    { Proto.vr_id = 7; vr_func = "f"; vr_bytecode_hash = 11;
      vr_feedback_hash = 22; vr_dna = "(dna (func f) (deltas))" }
  in
  (* the request identity is (dna, hashes): id and func are not part of it *)
  check_bool "req_key ignores id and func" true
    (Proto.req_key r = Proto.req_key { r with Proto.vr_id = 99; vr_func = "g" });
  check_bool "req_key sees the feedback hash" true
    (Proto.req_key r <> Proto.req_key { r with Proto.vr_feedback_hash = 23 });
  check_bool "req_key sees the dna" true
    (Proto.req_key r <> Proto.req_key { r with Proto.vr_dna = "(dna (func g) (deltas))" });
  check_bool "line_key distinguishes lines" true
    (Proto.line_key "{\"id\":1}" <> Proto.line_key "{\"id\":2}");
  check_bool "keys are non-negative" true
    (Proto.req_key r >= 0 && Proto.line_key "x" >= 0)

(* ---- delta_since ---- *)

let test_delta_since () =
  let db = build_db () in
  let gen = Db.generation db in
  let n = List.length (Db.entries db) in
  check_bool "harvest bumped the generation once per entry" true (gen = n && n >= 2);
  (match Db.delta_since db 0 with
  | g, Db.Append es ->
    check_int "full append from 0" n (List.length es);
    check_int "delta generation is current" gen g
  | _, Db.Resync _ -> Alcotest.fail "append-only history answered Resync");
  (match Db.delta_since db (gen - 1) with
  | _, Db.Append es -> check_int "suffix append" 1 (List.length es)
  | _, Db.Resync _ -> Alcotest.fail "suffix answered Resync");
  (match Db.delta_since db gen with
  | g, Db.Append [] -> check_int "up-to-date replica gets empty append" gen g
  | _ -> Alcotest.fail "up-to-date replica should get Append []");
  let cve0 = (List.hd (Db.entries db)).Db.cve in
  Db.remove_cve db cve0;
  match Db.delta_since db gen with
  | g, Db.Resync es ->
    check_int "resync ships the full post-removal list" (List.length (Db.entries db))
      (List.length es);
    check_int "resync generation is current" (Db.generation db) g
  | _, Db.Append _ -> Alcotest.fail "pre-removal generation must Resync"

(* ---- sharded == indexed ---- *)

(* Random sub-DNAs of real harvested entries, matched through the
   scatter/gather sharded index at 1/2/4 shards and through the plain
   indexed path — the match lists must be identical. *)
let qcheck_sharded_equals_indexed =
  QCheck.Test.make ~count:(qcheck_count 30)
    ~name:"service: sharded scatter/gather == indexed matching"
    QCheck.(triple (int_range 0 1000) (int_bound 0xFFFF) (int_range 1 4))
    (fun (pick, mask, shards) ->
      let db = Lazy.force shared_db in
      let entries = Array.of_list (Db.entries db) in
      let e = entries.(pick mod Array.length entries) in
      let deltas =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) e.Db.dna.Dna.deltas
      in
      let dna = { e.Db.dna with Dna.deltas } in
      let idx = Db.Sharded.create ~shards db in
      let q = Db.Sharded.matching_detailed ~params idx dna in
      let sorted l = List.sort compare l in
      sorted (Db.drop_details q.Db.q_matches)
      = sorted (Db.matching ~params db dna)
      && q.Db.q_generation = Db.generation db)

(* ---- keep-alive regression ---- *)

(* Two sequential requests on one connection must reuse the socket: the
   server's connection counter stays at 1 while its request counter
   reaches 2. (This is the regression test for the accept loop serving
   one request per connection or closing keep-alive sockets early.) *)
let test_keep_alive_reuses_socket () =
  let server =
    Http.Server.start ~workers:1
      ~handler:(fun req -> Http.respond ("echo:" ^ req.Http.rq_path))
      ~port:0 ()
  in
  Fun.protect
    ~finally:(fun () -> Http.Server.stop server)
    (fun () ->
      let conn = Http.Conn.connect ~port:(Http.Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Http.Conn.close conn)
        (fun () ->
          let status1, _, body1 = Http.Conn.request conn "/first" in
          let status2, _, body2 = Http.Conn.request conn "/second" in
          check_int "first status" 200 status1;
          check_int "second status" 200 status2;
          check_string "first body" "echo:/first" body1;
          check_string "second body" "echo:/second" body2;
          check_int "one TCP connection" 1 (Http.Server.connections server);
          check_int "two requests through it" 2 (Http.Server.requests server)))

(* ---- service end-to-end ---- *)

let with_service ?(shards = 2) ?server_cache db f =
  let svc = Service.create ~shards ~workers:1 ?server_cache ~db ~port:0 () in
  Fun.protect ~finally:(fun () -> Service.stop svc) (fun () -> f svc)

let test_verdict_endpoint_and_cache () =
  let db = build_db () in
  with_service db (fun svc ->
      let entries = Db.entries db in
      let e = List.hd entries in
      let req = req_of_entry ~id:1 e in
      let conn = Http.Conn.connect ~port:(Service.port svc) () in
      Fun.protect
        ~finally:(fun () -> Http.Conn.close conn)
        (fun () ->
          (* fresh: decided by the sharded query, not cached *)
          let resp =
            match Client.verdict_roundtrip conn [ req ] with
            | Ok [ r ] -> r
            | Ok l -> Alcotest.failf "expected 1 response, got %d" (List.length l)
            | Error m -> Alcotest.fail m
          in
          check_bool "first answer is uncached" false resp.Proto.vs_cached;
          check_bool "remote == local" true
            (resp.Proto.vs_verdict = local_verdict db e.Db.dna);
          check_int "verdict generation" (Db.generation db) resp.Proto.vs_generation;
          check_bool "an exploit DNA replayed verbatim is not Allow" true
            (resp.Proto.vs_verdict <> `Allow);
          (* repeat: served from the server cache, same verdict *)
          let again =
            match Client.verdict_roundtrip conn [ req ] with
            | Ok [ r ] -> r
            | _ -> Alcotest.fail "second round-trip failed"
          in
          check_bool "repeat is served cached" true again.Proto.vs_cached;
          check_bool "cached verdict identical" true
            (again.Proto.vs_verdict = resp.Proto.vs_verdict);
          (* a batch mixes cached and fresh lines; ids are echoed in order *)
          let e2 = List.nth entries (List.length entries - 1) in
          let batch = [ req; req_of_entry ~id:2 e2 ] in
          (match Client.verdict_roundtrip conn batch with
          | Ok [ r1; r2 ] ->
            check_int "batch echoes id 1" 1 r1.Proto.vs_id;
            check_int "batch echoes id 2" 2 r2.Proto.vs_id;
            check_bool "batch remote == local (2)" true
              (r2.Proto.vs_verdict = local_verdict db e2.Db.dna)
          | Ok l -> Alcotest.failf "expected 2 responses, got %d" (List.length l)
          | Error m -> Alcotest.fail m);
          (* DB mutation invalidates every cache level *)
          let gen_before = Db.generation db in
          Service.install svc { Db.cve = "CVE-TEST-INSTALL"; dna = e.Db.dna };
          check_bool "install bumped the generation" true
            (Db.generation db > gen_before);
          let after =
            match Client.verdict_roundtrip conn [ req ] with
            | Ok [ r ] -> r
            | _ -> Alcotest.fail "post-install round-trip failed"
          in
          check_bool "post-install answer is re-decided, not cached" false
            after.Proto.vs_cached;
          check_int "post-install generation" (Db.generation db)
            after.Proto.vs_generation;
          (* warm endpoint reflects the touched (bytecode, feedback) pair *)
          let status, _, body = Http.Conn.request conn "/warm?n=8" in
          check_int "warm status" 200 status;
          let j = Jsonx.parse body in
          let warm_entries = Jsonx.to_list_exn (Jsonx.member "entries" j) in
          check_bool "warm lists the hot pair" true
            (List.exists
               (fun w ->
                 Jsonx.to_int (Jsonx.member "bytecode_hash" w)
                 = req.Proto.vr_bytecode_hash
                 && Jsonx.to_int (Jsonx.member "feedback_hash" w)
                    = req.Proto.vr_feedback_hash)
               warm_entries);
          (* subscribe long-poll answers immediately for a stale gen *)
          let status, _, body = Http.Conn.request conn "/subscribe?gen=0&timeout_ms=200" in
          check_int "subscribe status" 200 status;
          check_int "subscribe reports the current generation"
            (Db.generation db)
            (Jsonx.to_int (Jsonx.member "generation" (Jsonx.parse body)));
          (* malformed input is a 400, not a closed connection *)
          let status, _, _ =
            Http.Conn.request conn ~meth:"POST" ~body:"not json" "/verdict"
          in
          check_int "malformed batch is a 400" 400 status;
          let status, _, _ = Http.Conn.request conn "/first" in
          check_int "connection survives the 400" 404 status))

let test_uncached_baseline_still_correct () =
  let db = Lazy.force shared_db in
  with_service ~server_cache:false db (fun svc ->
      let e = List.hd (Db.entries db) in
      let req = req_of_entry ~id:3 e in
      let conn = Http.Conn.connect ~port:(Service.port svc) () in
      Fun.protect
        ~finally:(fun () -> Http.Conn.close conn)
        (fun () ->
          match (Client.verdict_roundtrip conn [ req ], Client.verdict_roundtrip conn [ req ]) with
          | Ok [ a ], Ok [ b ] ->
            check_bool "uncached server never reports cached" false
              (a.Proto.vs_cached || b.Proto.vs_cached);
            check_bool "uncached remote == local" true
              (a.Proto.vs_verdict = local_verdict db e.Db.dna
              && b.Proto.vs_verdict = a.Proto.vs_verdict)
          | _ -> Alcotest.fail "round-trips failed"))

(* ---- client: replica sync and push invalidation ---- *)

let test_client_sync_replica () =
  let db = build_db () in
  with_service db (fun svc ->
      let client = Client.connect ~subscribe:false ~port:(Service.port svc) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          (match Client.sync client with
          | Ok g -> check_int "synced to the server generation" (Db.generation db) g
          | Error m -> Alcotest.fail m);
          check_int "replica has every entry"
            (List.length (Db.entries db))
            (List.length (Db.entries (Client.replica client)));
          match Client.warm client ~n:4 with
          | Ok _ -> ()
          | Error m -> Alcotest.fail ("warm: " ^ m)))

(* The push-invalidation acceptance property: once the client has
   observed a generation push, a verdict cached before the bump is never
   served again — the engine-facing policy cache misses. *)
let test_push_invalidates_policy_cache () =
  let db = build_db () in
  with_service db (fun svc ->
      let client = Client.connect ~port:(Service.port svc) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let cfg = Client.engine_config client ~vulns:VC.none () in
          let cache =
            match cfg.Engine.policy_cache with
            | Some c -> c
            | None -> Alcotest.fail "engine_config carries a policy cache"
          in
          let key = 424242 in
          Engine.Policy_cache.store cache key (Engine.Disable_passes [ "gvn" ]);
          check_bool "pre-push verdict is cached" true
            (Engine.Policy_cache.lookup cache key <> None);
          let pushed = ref 0 in
          Client.on_push client (fun g -> pushed := g);
          let e = List.hd (Db.entries db) in
          Service.install svc { Db.cve = "CVE-TEST-PUSH"; dna = e.Db.dna };
          let new_gen = Db.generation db in
          let deadline = Unix.gettimeofday () +. 10.0 in
          while Client.generation client < new_gen && Unix.gettimeofday () < deadline do
            Thread.yield ();
            Unix.sleepf 0.01
          done;
          check_bool "client observed the push" true
            (Client.generation client >= new_gen);
          check_bool "push handler saw the new generation" true (!pushed >= new_gen);
          check_bool "pre-bump cached verdict is gone" true
            (Engine.Policy_cache.lookup cache key = None)))

(* ---- remote == local, end to end through an engine ---- *)

let equiv_source =
  "function hot(a, b) { var t = 0; for (var i = 0; i < 12; i++) { t = t + \
   a * i - b; } return t; } var s = 0; for (var k = 0; k < 30; k++) s = s + \
   hot(k, 2); print(s);"

let test_remote_local_analyzer_equiv () =
  let db = Lazy.force shared_db in
  with_service db (fun svc ->
      let client = Client.connect ~subscribe:false ~port:(Service.port svc) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let local = Jitbull.analyzer ~params db in
          let remote = Client.analyzer ~params client in
          match
            Oracle.check_analyzer_equiv ~name_a:"local" ~analyzer_a:local
              ~name_b:"remote" ~analyzer_b:remote equiv_source
          with
          | [] -> ()
          | vs ->
            Alcotest.failf "remote==local violated: %s"
              (String.concat "; "
                 (List.map
                    (fun (v : Oracle.violation) ->
                      v.Oracle.mv_invariant ^ ": " ^ v.Oracle.mv_detail)
                    vs))))

let suite =
  ( "service",
    [
      Alcotest.test_case "proto round-trip" `Quick test_proto_roundtrip;
      Alcotest.test_case "proto cache keys" `Quick test_proto_keys;
      Alcotest.test_case "delta_since append/resync" `Quick test_delta_since;
      qtest qcheck_sharded_equals_indexed;
      Alcotest.test_case "keep-alive reuses one socket" `Quick
        test_keep_alive_reuses_socket;
      Alcotest.test_case "verdict endpoint, cache, invalidation" `Quick
        test_verdict_endpoint_and_cache;
      Alcotest.test_case "uncached baseline stays correct" `Quick
        test_uncached_baseline_still_correct;
      Alcotest.test_case "client replica sync + warm" `Quick test_client_sync_replica;
      Alcotest.test_case "push invalidates pre-bump verdicts" `Quick
        test_push_invalidates_policy_cache;
      Alcotest.test_case "remote == local analyzer (oracle)" `Quick
        test_remote_local_analyzer_equiv;
    ] )
