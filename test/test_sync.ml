(* Distributed-campaign corpus sync: the master's wire protocol (union
   coverage merge, idempotent re-sync, lease work-stealing, deduplicated
   uploads, corpus broadcast), a real two-worker end-to-end run whose
   merged coverage is the exact union of the per-worker maps, master
   restart persistence, and the distilled-corpus golden format. *)

open Helpers
module F = Jitbull_fuzz
module Http = Jitbull_obs.Http_export
module Jsonx = Jitbull_obs.Jsonx

let with_master ?config ?corpus_dir ?chunk ?lease_timeout f =
  let m = F.Sync.Master.start ?config ?corpus_dir ?chunk ?lease_timeout ~port:0 () in
  Fun.protect ~finally:(fun () -> F.Sync.Master.stop m) (fun () -> f m)

let with_conn m f =
  let conn = Http.Conn.connect ~port:(F.Sync.Master.port m) () in
  Fun.protect ~finally:(fun () -> Http.Conn.close conn) (fun () -> f conn)

let get conn path =
  let status, _, body = Http.Conn.request conn path in
  check_int ("GET " ^ path) 200 status;
  Jsonx.parse body

let post conn path payload =
  let status, _, body =
    Http.Conn.request conn ~meth:"POST" ~body:(Jsonx.to_string payload) path
  in
  check_int ("POST " ^ path) 200 status;
  Jsonx.parse body

let int_field name j = Jsonx.to_int (Jsonx.member name j)

let int_list_field name j =
  List.map Jsonx.to_int (Jsonx.to_list_exn (Jsonx.member name j))

let coverage_payload worker features =
  Jsonx.Assoc
    [
      ("worker", Jsonx.String worker);
      ("features", Jsonx.List (List.map (fun f -> Jsonx.Int f) features));
    ]

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

(* ---- wire protocol ---- *)

let test_coverage_union_and_idempotence () =
  with_master (fun m ->
      with_conn m (fun conn ->
          let r = post conn "/fuzz/coverage" (coverage_payload "a" [ 1; 2; 3 ]) in
          check_int "first sync adds all features" 3 (int_field "new" r);
          check_int "total is the union so far" 3 (int_field "total" r);
          check_bool "nothing missing for the only worker" true
            (int_list_field "missing" r = []);
          let r = post conn "/fuzz/coverage" (coverage_payload "b" [ 3; 4 ]) in
          check_int "only the unseen feature is new" 1 (int_field "new" r);
          check_int "total is |{1,2,3,4}|" 4 (int_field "total" r);
          check_bool "b learns what a contributed" true
            (List.sort compare (int_list_field "missing" r) = [ 1; 2 ]);
          (* idempotent re-sync: same features again is a no-op *)
          let r = post conn "/fuzz/coverage" (coverage_payload "b" [ 1; 2; 3; 4 ]) in
          check_int "re-sync adds nothing" 0 (int_field "new" r);
          check_int "total unchanged" 4 (int_field "total" r);
          check_bool "nothing missing after convergence" true
            (int_list_field "missing" r = []);
          check_int "master counted every sync" 3 (F.Sync.Master.syncs m);
          check_int "master map is the union" 4 (F.Sync.Master.coverage_count m)))

let test_work_leases_and_stealing () =
  (* lease_timeout 0: every outstanding lease is immediately stealable *)
  with_master ~chunk:16 ~lease_timeout:0.0 (fun m ->
      with_conn m (fun conn ->
          let w = get conn "/fuzz/work?worker=a" in
          check_int "first lease starts at 0" 0 (int_field "lo" w);
          check_int "first lease spans the chunk" 16 (int_field "hi" w);
          check_bool "fresh range" true (Jsonx.member "stolen" w = Jsonx.Bool false);
          (* a never reports done; the expired lease is re-issued *)
          let w = get conn "/fuzz/work?worker=b" in
          check_int "stolen range lo" 0 (int_field "lo" w);
          check_int "stolen range hi" 16 (int_field "hi" w);
          check_bool "marked stolen" true (Jsonx.member "stolen" w = Jsonx.Bool true);
          ignore
            (post conn "/fuzz/done"
               (Jsonx.Assoc
                  [
                    ("worker", Jsonx.String "b");
                    ("lo", Jsonx.Int 0);
                    ("hi", Jsonx.Int 16);
                  ]));
          (* released: the next request gets a fresh range, not a steal *)
          let w = get conn "/fuzz/work?worker=c" in
          check_int "fresh range after release" 16 (int_field "lo" w);
          check_bool "not stolen" true (Jsonx.member "stolen" w = Jsonx.Bool false)))

let test_upload_dedup_and_broadcast () =
  with_master (fun m ->
      with_conn m (fun conn ->
          let upload source =
            post conn "/fuzz/interesting"
              (Jsonx.Assoc
                 [
                   ("worker", Jsonx.String "a");
                   ("source", Jsonx.String source);
                   ("gain", Jsonx.Int 2);
                 ])
          in
          let r = upload "print(1);" in
          check_bool "first upload admitted" true
            (Jsonx.member "admitted" r = Jsonx.Bool true);
          let r = upload "print(1);" in
          check_bool "duplicate rejected by digest" true
            (Jsonx.member "admitted" r = Jsonx.Bool false);
          ignore (upload "print(2);");
          check_int "corpus holds the two distinct inputs" 2 (F.Sync.Master.corpus_size m);
          let b = get conn "/fuzz/corpus?since=0" in
          check_int "broadcast returns both" 2
            (List.length (Jsonx.to_list_exn (Jsonx.member "entries" b)));
          let next = int_field "next" b in
          let b = get conn (Printf.sprintf "/fuzz/corpus?since=%d" next) in
          check_int "cursor past the end returns nothing" 0
            (List.length (Jsonx.to_list_exn (Jsonx.member "entries" b)))))

(* ---- two-worker end-to-end ---- *)

let test_two_worker_union () =
  with_master (fun m ->
      let port = F.Sync.Master.port m in
      let w1 =
        F.Sync.Worker.run ~il:true ~rounds:1 ~execs_per_round:25 ~rng_seed:11 ~id:"w1"
          ~port ()
      in
      (* w2 runs after w1, so its closing sync merges the master's map
         (which already holds w1's) back into its own: when it finishes,
         both sides hold exactly the union of the per-worker maps *)
      let w2 =
        F.Sync.Worker.run ~il:true ~rounds:1 ~execs_per_round:25 ~rng_seed:22 ~id:"w2"
          ~port ()
      in
      check_bool "workers executed" true
        (w1.F.Sync.Worker.w_execs = 25 && w2.F.Sync.Worker.w_execs = 25);
      check_bool "master holds at least each worker's map" true
        (F.Sync.Master.coverage_count m >= w1.F.Sync.Worker.w_coverage
        && F.Sync.Master.coverage_count m >= w2.F.Sync.Worker.w_coverage);
      check_int "last worker converged on the union" (F.Sync.Master.coverage_count m)
        w2.F.Sync.Worker.w_coverage;
      check_bool "second worker imported the first's corpus" true
        (w2.F.Sync.Worker.w_imported > 0);
      check_bool "both workers synced" true (F.Sync.Master.syncs m >= 2))

(* ---- master restart persistence ---- *)

let test_master_restart_keeps_corpus () =
  let dir = tmp_dir "jitbull_sync_corpus" in
  let upload conn source =
    post conn "/fuzz/interesting"
      (Jsonx.Assoc [ ("worker", Jsonx.String "a"); ("source", Jsonx.String source) ])
  in
  with_master ~corpus_dir:dir (fun m ->
      with_conn m (fun conn ->
          ignore (upload conn "print(1);");
          ignore (upload conn "var i = 0; while (i < 3) { i = i + 1; } print(i);");
          check_int "entries persisted" 2 (F.Sync.Master.corpus_size m)));
  (* restart: the corpus reloads and replays into a fresh coverage map,
     and the dedup set still rejects re-uploads of persisted entries *)
  with_master ~corpus_dir:dir (fun m ->
      check_int "corpus survives the restart" 2 (F.Sync.Master.corpus_size m);
      check_bool "coverage replayed from the reloaded entries" true
        (F.Sync.Master.coverage_count m > 0);
      with_conn m (fun conn ->
          let r = upload conn "print(1);" in
          check_bool "persisted entry still deduplicated" true
            (Jsonx.member "admitted" r = Jsonx.Bool false)))

(* ---- distillation + the committed-corpus golden format ---- *)

let distill_fixture () =
  let c = F.Corpus.create () in
  ignore (F.Corpus.add c ~gain:1 "print(1);");
  ignore
    (F.Corpus.add c ~gain:2 "var i = 0; while (i < 4) { i = i + 1; } print(i);");
  ignore
    (F.Corpus.add c ~gain:3
       ~il:"il v1\nfunc 0 in 0\nend\nmain\nend"
       "function f(x) { return x + 1; } print(f(2));");
  F.Corpus.entries c

let test_distill_coverage_preserving () =
  let entries = distill_fixture () in
  let d = F.Sync.distill entries in
  check_int "starts from every entry" 3 d.F.Sync.d_total;
  check_bool "kept a nonempty subset" true
    (d.F.Sync.d_entries <> [] && List.length d.F.Sync.d_entries <= 3);
  (* replaying exactly the kept entries reproduces the full feature set *)
  let cov = F.Coverage.create () in
  List.iter
    (fun (e : F.Corpus.entry) ->
      ignore
        (F.Coverage.add_features cov
           (F.Coverage.features_of_run (F.Oracle.run_instrumented e.F.Corpus.source))))
    d.F.Sync.d_entries;
  check_int "kept subset covers everything" d.F.Sync.d_features (F.Coverage.count cov);
  check_int "one cover count per kept entry" (List.length d.F.Sync.d_entries)
    (List.length d.F.Sync.d_covers);
  check_bool "every kept entry contributes" true
    (List.for_all (fun n -> n > 0) d.F.Sync.d_covers);
  (* deterministic: same entries, same greedy order *)
  let d' = F.Sync.distill entries in
  check_bool "distillation is deterministic" true
    (List.map (fun (e : F.Corpus.entry) -> e.F.Corpus.id) d.F.Sync.d_entries
    = List.map (fun (e : F.Corpus.entry) -> e.F.Corpus.id) d'.F.Sync.d_entries
    && d.F.Sync.d_covers = d'.F.Sync.d_covers)

let is_hex32 s = String.length s = 32 && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let test_manifest_golden_format () =
  let entries = distill_fixture () in
  let d = F.Sync.distill entries in
  let text = F.Sync.manifest d in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  (* header: pinned verbatim *)
  check_string "version line" "jitbull distilled corpus v1" (List.nth lines 0);
  check_string "entries line"
    (Printf.sprintf "entries %d" (List.length d.F.Sync.d_entries))
    (List.nth lines 1);
  check_string "features line"
    (Printf.sprintf "features %d" d.F.Sync.d_features)
    (List.nth lines 2);
  check_string "of line" "of 3" (List.nth lines 3);
  (* entry lines: [entry NNNNNN cover N md5 <hex32> <js|il>] in cover
     order, with the digest of the kept entry's exact source *)
  List.iteri
    (fun ord ((e : F.Corpus.entry), cover) ->
      let line = List.nth lines (4 + ord) in
      match String.split_on_char ' ' line with
      | [ "entry"; o; "cover"; c; "md5"; h; kind ] ->
        check_string "ordinal is six digits" (Printf.sprintf "%06d" ord) o;
        check_string "cover count" (string_of_int cover) c;
        check_bool "md5 is 32 hex chars" true (is_hex32 h);
        check_string "md5 matches the source"
          (Digest.to_hex (Digest.string e.F.Corpus.source))
          h;
        check_string "kind tags the il sidecar"
          (match e.F.Corpus.il with Some _ -> "il" | None -> "js")
          kind
      | _ -> Alcotest.failf "malformed entry line: %s" line)
    (List.combine d.F.Sync.d_entries d.F.Sync.d_covers)

let test_write_distilled_layout () =
  let entries = distill_fixture () in
  let d = F.Sync.distill entries in
  let dir = tmp_dir "jitbull_distilled" in
  F.Sync.write_distilled ~dir d;
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_string "MANIFEST is the manifest" (F.Sync.manifest d)
    (read (Filename.concat dir "MANIFEST"));
  List.iteri
    (fun ord (e : F.Corpus.entry) ->
      check_string "renumbered .js holds the source" e.F.Corpus.source
        (read (Filename.concat dir (Printf.sprintf "%06d.js" ord)));
      match e.F.Corpus.il with
      | None ->
        check_bool "no spurious .il sidecar" false
          (Sys.file_exists (Filename.concat dir (Printf.sprintf "%06d.il" ord)))
      | Some il ->
        check_string ".il sidecar holds the IL" il
          (read (Filename.concat dir (Printf.sprintf "%06d.il" ord))))
    d.F.Sync.d_entries;
  (* a distilled directory is a loadable corpus: the CI campaign seeds
     from it directly *)
  let c = F.Corpus.create ~dir () in
  check_int "distilled dir reloads as a corpus" (List.length d.F.Sync.d_entries)
    (F.Corpus.length c)

let suite =
  ( "sync",
    [
      Alcotest.test_case "coverage merge: union + idempotent re-sync" `Quick
        test_coverage_union_and_idempotence;
      Alcotest.test_case "work leases: fresh ranges and stealing" `Quick
        test_work_leases_and_stealing;
      Alcotest.test_case "uploads dedup; broadcast pages by cursor" `Quick
        test_upload_dedup_and_broadcast;
      Alcotest.test_case "two workers converge on the coverage union" `Slow
        test_two_worker_union;
      Alcotest.test_case "master restart keeps the persisted corpus" `Quick
        test_master_restart_keeps_corpus;
      Alcotest.test_case "distill: coverage-preserving and deterministic" `Quick
        test_distill_coverage_preserving;
      Alcotest.test_case "manifest: golden format" `Quick test_manifest_golden_format;
      Alcotest.test_case "write_distilled: layout round-trips as a corpus" `Quick
        test_write_distilled_layout;
    ] )
