(* Tests for jitbull_util: sexpr, prng, text_table. *)

open Helpers
module Sexpr = Jitbull_util.Sexpr
module Prng = Jitbull_util.Prng
module Text_table = Jitbull_util.Text_table

let roundtrip s = Sexpr.of_string (Sexpr.to_string s)

let rec sexpr_equal a b =
  match (a, b) with
  | Sexpr.Atom x, Sexpr.Atom y -> String.equal x y
  | Sexpr.List xs, Sexpr.List ys ->
    List.length xs = List.length ys && List.for_all2 sexpr_equal xs ys
  | _ -> false

let test_atoms () =
  check_string "plain atom" "hello" (Sexpr.to_string (Sexpr.atom "hello"));
  check_string "quoted atom" "\"two words\"" (Sexpr.to_string (Sexpr.atom "two words"));
  check_string "empty atom" "\"\"" (Sexpr.to_string (Sexpr.atom ""));
  check_int "int atom" 42 (Sexpr.to_int (Sexpr.int 42));
  check_bool "bool atom" true (Sexpr.to_bool (Sexpr.bool true));
  Alcotest.(check (float 0.0)) "float atom" 3.25 (Sexpr.to_float (Sexpr.float 3.25))

let test_parse () =
  let s = Sexpr.of_string "(a (b 1 2) \"c d\")" in
  match s with
  | Sexpr.List [ Sexpr.Atom "a"; Sexpr.List [ Sexpr.Atom "b"; Sexpr.Atom "1"; Sexpr.Atom "2" ]; Sexpr.Atom "c d" ]
    -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_comments () =
  let s = Sexpr.of_string "; header\n(x ; inline\n y)" in
  check_bool "comments skipped" true
    (sexpr_equal s (Sexpr.list [ Sexpr.atom "x"; Sexpr.atom "y" ]))

let test_parse_errors () =
  let fails str =
    match Sexpr.of_string str with
    | exception Sexpr.Decode_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ str)
  in
  fails "(unclosed";
  fails ")";
  fails "\"unterminated";
  fails "a b"  (* trailing garbage *)

let test_field () =
  let s = Sexpr.of_string "(rec (name foo) (size 3))" in
  check_string "field name" "foo" (Sexpr.to_atom (List.hd (Sexpr.field "name" s)));
  check_int "field size" 3 (Sexpr.to_int (List.hd (Sexpr.field "size" s)));
  check_bool "field_opt absent" true (Sexpr.field_opt "missing" s = None)

let sexpr_gen =
  let open QCheck.Gen in
  let atom_gen =
    oneof
      [
        map Sexpr.atom (string_size ~gen:printable (int_range 0 8));
        map Sexpr.int int;
        map Sexpr.bool bool;
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then atom_gen
          else
            frequency
              [ (2, atom_gen); (1, map Sexpr.list (list_size (int_range 0 4) (self (n / 2)))) ])
        (min n 6))

let qcheck_roundtrip =
  QCheck.Test.make ~count:(qcheck_count 300) ~name:"sexpr print/parse roundtrip"
    (QCheck.make sexpr_gen)
    (fun s -> sexpr_equal s (roundtrip s))

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 50 do
    check_bool "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done;
  let c = Prng.create 124 in
  check_bool "different seed differs" true (Prng.next_int64 (Prng.create 123) <> Prng.next_int64 c)

let qcheck_prng_bounds =
  QCheck.Test.make ~count:(qcheck_count 500) ~name:"prng int within bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let p = Prng.create seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let test_prng_float_range () =
  let p = Prng.create 7 in
  for _ = 1 to 200 do
    let f = Prng.float p in
    check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_shuffle_is_permutation () =
  let p = Prng.create 99 in
  let arr = Array.init 30 (fun i -> i) in
  Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check_bool "permutation" true (sorted = Array.init 30 (fun i -> i))

let test_prng_copy () =
  let p = Prng.create 5 in
  ignore (Prng.next_int64 p);
  let q = Prng.copy p in
  check_bool "copy continues identically" true (Prng.next_int64 p = Prng.next_int64 q)

let test_table_render () =
  let out = Text_table.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ] in
  let lines = String.split_on_char '\n' out in
  check_int "4 lines" 4 (List.length lines);
  check_bool "pad shorter rows" true (String.length (List.nth lines 3) >= 3)

let test_table_align () =
  let out =
    Text_table.render ~headers:[ "n" ] ~aligns:[ Text_table.Right ] [ [ "1" ]; [ "22" ] ]
  in
  check_bool "right aligned" true
    (String.split_on_char '\n' out |> fun l -> List.nth l 2 = " 1")

let test_bar () =
  check_string "full bar" "#####" (Text_table.bar ~width:5 ~max_value:10.0 10.0);
  check_string "empty on zero max" "" (Text_table.bar ~width:5 ~max_value:0.0 3.0);
  check_string "half bar" "##" (Text_table.bar ~width:4 ~max_value:10.0 5.0)

(* ---- Rwlock writer progress under reader pressure ---- *)

(* Concurrency width, same variable the rest of the suite keys on. *)
let test_jobs =
  match Sys.getenv_opt "JITBULL_TEST_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 2)
  | None -> 2

(* The per-shard Rwlocks of the verdict service's sharded index see a
   stream of short read sections (queries) with occasional writers
   (refresh after install/remove). The property: a writer always makes
   progress — [writes] write sections complete under continuous read
   pressure from [test_jobs] domains, every reader observes only
   fully-applied writes (the pair invariant), and the final state
   reflects every write. A starvation-prone or deadlocking lock hangs
   this test rather than failing an assertion, so the reader loops are
   bounded by a deadline as a backstop. *)
let qcheck_rwlock_writer_progress =
  QCheck.Test.make ~count:(qcheck_count 10)
    ~name:"rwlock: writer progress and pair invariant under reader domains"
    QCheck.(pair (int_range 1 4) (int_range 10 60))
    (fun (writers, writes) ->
      let lock = Jitbull_util.Rwlock.create () in
      let a = ref 0 and b = ref 0 in
      let stop = Atomic.make false in
      let torn = Atomic.make 0 in
      let readers =
        List.init test_jobs (fun _ ->
            Domain.spawn (fun () ->
                let deadline = Unix.gettimeofday () +. 10.0 in
                while
                  (not (Atomic.get stop)) && Unix.gettimeofday () < deadline
                do
                  Jitbull_util.Rwlock.with_read lock (fun () ->
                      if !a <> !b then Atomic.incr torn)
                done))
      in
      let writer_threads =
        List.init writers (fun _ ->
            Thread.create
              (fun () ->
                for _ = 1 to writes do
                  Jitbull_util.Rwlock.with_write lock (fun () ->
                      incr a;
                      (* widen the window a torn read would need to hit *)
                      if !a land 7 = 0 then Thread.yield ();
                      incr b)
                done)
              ())
      in
      List.iter Thread.join writer_threads;
      Atomic.set stop true;
      List.iter Domain.join readers;
      Atomic.get torn = 0 && !a = writers * writes && !b = !a)

let suite =
  ( "util",
    [
      Alcotest.test_case "sexpr atoms" `Quick test_atoms;
      Alcotest.test_case "sexpr parse" `Quick test_parse;
      Alcotest.test_case "sexpr comments" `Quick test_parse_comments;
      Alcotest.test_case "sexpr parse errors" `Quick test_parse_errors;
      Alcotest.test_case "sexpr field access" `Quick test_field;
      qtest qcheck_roundtrip;
      Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
      qtest qcheck_prng_bounds;
      Alcotest.test_case "prng float range" `Quick test_prng_float_range;
      Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_is_permutation;
      Alcotest.test_case "prng copy" `Quick test_prng_copy;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table align" `Quick test_table_align;
      Alcotest.test_case "bar" `Quick test_bar;
      qtest qcheck_rwlock_writer_progress;
    ] )
