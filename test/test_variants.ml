(* Tests for the variant generators on benign programs: every transform
   must preserve observable behaviour (the decoys added by [mix] may print
   nothing, so output equality holds). *)

open Helpers
module Variants = Jitbull_vdc.Variants
module V = Jitbull_vdc.Demonstrators
module Parser = Jitbull_frontend.Parser
module Printer = Jitbull_frontend.Printer
module Ast = Jitbull_frontend.Ast

let benign_programs =
  [
    "function add(a, b) { return a + b; } print(add(2, 3));";
    "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } print(fib(10));";
    "var total = 0; var data = [5, 3, 8]; for (var i = 0; i < data.length; i++) { total += data[i]; } print(total);";
    "function scale(v, f) { var out = []; for (var i = 0; i < v.length; i++) { out.push(v[i] * f); } return out; } print(scale([1,2,3], 3).join(','));";
    "var obj = {count: 0}; function bump(o) { o.count = o.count + 1; return o.count; } bump(obj); bump(obj); print(obj.count);";
  ]

let test_variant_preserves_semantics kind () =
  List.iter
    (fun src ->
      let variant = Variants.apply kind src in
      check_string
        (Variants.kind_name kind ^ " preserves output")
        (interp_output src) (interp_output variant))
    benign_programs

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_rename_changes_identifiers () =
  let src = "function veryLongName(inputValue) { return inputValue + 1; } print(veryLongName(1));" in
  let out = Variants.apply Variants.Rename src in
  check_bool "old names gone" false (contains out "veryLongName")

let test_rename_keeps_builtins () =
  let src = "print(Math.floor(3.9));" in
  let out = Variants.apply Variants.Rename src in
  check_string "builtins survive renaming" "3\n" (interp_output out)

let test_rename_keeps_properties () =
  (* property names are part of object layout, not bindings *)
  let src = "var o = {width: 4}; print(o.width);" in
  let out = Variants.apply Variants.Rename src in
  check_string "property names survive" "4\n" (interp_output out)

let test_minify_is_compact () =
  let src = "function f(a) {\n  return a + 1;\n}\nprint(f(1));" in
  let out = Variants.apply Variants.Minify src in
  check_bool "no newlines" true (not (String.contains out '\n'));
  check_string "still runs" "2\n" (interp_output out)

let test_mix_adds_decoy_functions () =
  let src = "function f(a) { return a; } print(f(1));" in
  let p = Parser.parse (Variants.apply Variants.Mix src) in
  check_bool "more functions than original" true (List.length p.Ast.functions > 1)

let test_mix_determinism () =
  let src = "var a = 1; var b = 2; var c = 3; print(a + b + c);" in
  check_string "same seed same output" (Variants.apply ~seed:3 Variants.Mix src)
    (Variants.apply ~seed:3 Variants.Mix src)

let test_split_adds_wrappers () =
  let src = "function f(a) { return a * 2; } print(f(21));" in
  let out = Variants.apply Variants.Split src in
  let p = Parser.parse out in
  check_int "wrapper added" 2 (List.length p.Ast.functions);
  check_bool "wrapper named" true
    (List.exists (fun (f : Ast.func) -> f.Ast.name = "f_step") p.Ast.functions);
  check_string "still runs" "42\n" (interp_output out)

let test_split_redirects_main_calls () =
  let src = "function g(x) { return x; } var r = g(5); print(r);" in
  let out = Variants.apply Variants.Split src in
  check_bool "main call redirected" true (contains out "g_step(5)")

(* Complementary to test_security's full-vulnerability matrix: with only
   the demonstrator's own CVE active, every generated variant still fires
   — the exploit shape is attributable to that specific pass bug, not to
   an interaction between several injected bugs. *)
let test_variant_triggers_own_cve (d : V.t) () =
  let config =
    {
      Engine.default_config with
      Engine.vulns = VC.make [ d.V.cve ];
      baseline_threshold = 2;
      ion_threshold = 4;
    }
  in
  List.iter
    (fun kind ->
      let variant = Variants.apply kind d.V.source in
      match V.run_exploit config variant d.V.expected with
      | V.Exploited _ -> ()
      | V.Neutralized ->
        Alcotest.fail
          (d.V.name ^ " " ^ Variants.kind_name kind
         ^ " variant did not fire under its own CVE alone"))
    Variants.all_kinds

let suite =
  ( "variants",
    List.map
      (fun kind ->
        Alcotest.test_case
          (Variants.kind_name kind ^ " preserves semantics")
          `Quick
          (test_variant_preserves_semantics kind))
      Variants.all_kinds
    @ List.map
        (fun (d : V.t) ->
          Alcotest.test_case
            (d.V.name ^ " variants fire under own CVE")
            `Slow
            (test_variant_triggers_own_cve d))
        V.all
    @ [
        Alcotest.test_case "rename changes identifiers" `Quick test_rename_changes_identifiers;
        Alcotest.test_case "rename keeps builtins" `Quick test_rename_keeps_builtins;
        Alcotest.test_case "rename keeps properties" `Quick test_rename_keeps_properties;
        Alcotest.test_case "minify compact" `Quick test_minify_is_compact;
        Alcotest.test_case "mix adds decoys" `Quick test_mix_adds_decoy_functions;
        Alcotest.test_case "mix deterministic" `Quick test_mix_determinism;
        Alcotest.test_case "split adds wrappers" `Quick test_split_adds_wrappers;
        Alcotest.test_case "split redirects calls" `Quick test_split_redirects_main_calls;
      ] )
