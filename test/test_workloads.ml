(* The Octane-analogue corpus: each workload is deterministic, runs on all
   tiers with identical output, and contains enough hot functions to
   exercise the JIT. *)

open Helpers
module W = Jitbull_workloads.Workloads
module Engine = Jitbull_jit.Engine

let test_workload_all_tiers (w : W.t) () =
  let reference = interp_output w.W.source in
  check_bool "produces output" true (String.length reference > 0);
  check_string (w.W.name ^ " vm") reference (vm_output w.W.source);
  let out, t = Engine.run_source Engine.default_config w.W.source in
  check_string (w.W.name ^ " jit") reference out;
  let s = Engine.stats t in
  check_bool (w.W.name ^ " reached Ion") true (s.Engine.ion_compiles > 0)

(* The workloads on a fully *vulnerable* engine, with JITBULL armed from
   the VDC database: every workload must still match the reference
   interpreter. This is not vacuous — Richards trips the injected
   CVE-2019-9792 bug unprotected (a modeled miscompilation firing on real
   benign code, see [test_richards_trips_a_modeled_bug]); the go/no-go
   policy restores it without breaking any other workload. *)
let all_vulns = Jitbull_passes.Vuln_config.make Jitbull_passes.Vuln_config.all

let vulnerable_config = { Engine.default_config with Engine.vulns = all_vulns }

let armed_config =
  lazy
    (let module V = Jitbull_vdc.Demonstrators in
    let module Db = Jitbull_core.Db in
    let db = Db.create () in
    List.iter
      (fun (d : V.t) ->
        ignore
          (Db.harvest db ~cve:d.V.name
             ~vulns:(Jitbull_passes.Vuln_config.make [ d.V.cve ])
             d.V.source))
      V.all;
    { (Jitbull_core.Jitbull.config ~vulns:all_vulns db) with Engine.policy_cache = None })

let test_workload_armed_vulnerable_engine (w : W.t) () =
  let reference = interp_output w.W.source in
  let out, _ = Engine.run_source (Lazy.force armed_config) w.W.source in
  check_string (w.W.name ^ " identical under armed JITBULL on vulnerable engine") reference
    out

let test_richards_trips_a_modeled_bug () =
  let w = Option.get (W.find "richards") in
  let reference = interp_output w.W.source in
  let unprotected, _ = Engine.run_source vulnerable_config w.W.source in
  check_bool "Richards miscompiled by the unprotected vulnerable engine" false
    (String.equal reference unprotected);
  let guarded, _ = Engine.run_source (Lazy.force armed_config) w.W.source in
  check_string "JITBULL restores Richards" reference guarded

let test_workload_determinism (w : W.t) () =
  check_string (w.W.name ^ " deterministic") (jit_output w.W.source) (jit_output w.W.source)

let test_registry () =
  check_int "fourteen Octane analogues" 14 (List.length W.all);
  check_int "sixteen with microbenches" 16 (List.length W.everything);
  check_bool "find case-insensitive" true (W.find "richards" <> None);
  check_bool "find missing" true (W.find "nope" = None)

let test_names_match_paper () =
  let names = List.map (fun (w : W.t) -> w.W.name) W.everything in
  List.iter
    (fun expected -> check_bool (expected ^ " present") true (List.mem expected names))
    [ "Richards"; "DeltaBlue"; "Crypto"; "RayTrace"; "RegExp"; "Splay"; "NavierStokes";
      "PdfJS"; "Box2D"; "TypeScript"; "EarleyBoyer"; "Gameboy"; "CodeLoad"; "Mandreel";
      "Microbench1"; "Microbench2" ]

let suite =
  ( "workloads",
    List.concat_map
      (fun (w : W.t) ->
        [
          Alcotest.test_case (w.W.name ^ " tiers agree") `Slow (test_workload_all_tiers w);
          Alcotest.test_case
            (w.W.name ^ " armed JITBULL on vulnerable engine")
            `Slow
            (test_workload_armed_vulnerable_engine w);
        ])
      W.everything
    @ [
        Alcotest.test_case "Microbench1 deterministic" `Quick
          (test_workload_determinism W.microbench1);
        Alcotest.test_case "Microbench1 armed on vulnerable engine" `Quick
          (test_workload_armed_vulnerable_engine W.microbench1);
        Alcotest.test_case "Richards trips a modeled bug unprotected" `Slow
          test_richards_trips_a_modeled_bug;
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "paper names" `Quick test_names_match_paper;
      ] )
